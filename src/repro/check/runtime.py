"""Gating and enforcement for the debug-mode assertions.

The analyzers are wired into ``Database.explain``/``estimate``,
``MappingEvaluator``, and the search algorithms as *debug-mode
assertions*: they run only when :func:`checks_enabled` says so, record
every violation through the ambient :mod:`repro.obs` tracer, and abort
the offending operation with :class:`~repro.errors.CheckError` on any
ERROR-severity finding — before a corrupted artifact can produce a
wrong cost.

``REPRO_CHECK`` controls the gate: ``1``/``true``/``on`` force-enables,
``0``/``false``/``off`` force-disables. When unset, checks default to
**on under pytest** (so the whole test suite runs instrumented) and off
otherwise.
"""

from __future__ import annotations

import contextlib
import os
import sys
from typing import Iterator

from ..errors import CheckError
from .findings import Findings, Severity

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}

#: Programmatic override (tests use :func:`override_checks`).
_override: bool | None = None


def checks_enabled() -> bool:
    """Whether the debug-mode static analyzers should run."""
    if _override is not None:
        return _override
    value = os.environ.get("REPRO_CHECK")
    if value is not None:
        return value.strip().lower() not in _FALSY
    return "PYTEST_CURRENT_TEST" in os.environ or "pytest" in sys.modules


@contextlib.contextmanager
def override_checks(enabled: bool | None) -> Iterator[None]:
    """Force the gate on/off (``None`` restores env-based behaviour)."""
    global _override
    previous = _override
    _override = enabled
    try:
        yield
    finally:
        _override = previous


def report(findings: Findings, tracer, context: str = "") -> None:
    """Record findings as tracer events and metrics (no exception)."""
    if not findings:
        return
    if tracer is not None and tracer.enabled:
        metrics = tracer.metrics("check")
        for finding in findings:
            tracer.event("check.violation", code=finding.code,
                         severity=finding.severity.value,
                         message=finding.message,
                         location=finding.location, context=context)
            metrics.incr(f"violations_{finding.severity.value}")
            if finding.severity is Severity.ERROR:
                metrics.incr(f"code_{finding.code}")


def enforce(findings: Findings, tracer=None, context: str = "") -> Findings:
    """Report findings; raise :class:`CheckError` on any ERROR.

    Returns the findings unchanged when nothing is ERROR-severity, so
    callers can keep collecting warnings.
    """
    report(findings, tracer, context)
    errors = findings.errors
    if errors:
        summary = "; ".join(f.render() for f in errors[:5])
        if len(errors) > 5:
            summary += f"; ... {len(errors) - 5} more"
        where = f" in {context}" if context else ""
        raise CheckError(
            f"static analysis found {len(errors)} error(s){where}: {summary}",
            findings=findings)
    return findings
