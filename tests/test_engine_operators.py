"""Direct unit tests for plan operators and cost accounting."""

import pytest

from repro.engine import Column, Database, SQLType
from repro.engine.cost import CostCounter
from repro.engine.plans import (IndexSeek, NestedLoopJoin, Runtime,
                                SemiJoinExists, SeqScan)
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [Column("ID", SQLType.INTEGER, False),
                                Column("v", SQLType.VARCHAR)])
    database.create_table("u", [Column("ID", SQLType.INTEGER, False),
                                Column("PID", SQLType.INTEGER)])
    database.insert_rows("t", [(i, f"v{i % 3}") for i in range(30)])
    database.insert_rows("u", [(100 + j, j % 10) for j in range(20)])
    database.analyze()
    return database


def runtime(db):
    return Runtime(db.catalog, CostCounter())


class TestSeqScan:
    def test_charges_pages_and_tuples(self, db):
        rt = runtime(db)
        rows = list(SeqScan("t", "t").execute(rt))
        assert len(rows) == 30
        assert rt.counter.seq_pages >= 1
        assert rt.counter.cpu_tuples == 30

    def test_filter_applied(self, db):
        rt = runtime(db)
        pred = lambda env: env["t"][1] == "v1"
        rows = list(SeqScan("t", "t", pred).execute(rt))
        assert len(rows) == 10

    def test_stats_only_table_rejected(self, db):
        db.create_table("ghost", [Column("ID", SQLType.INTEGER, False)])
        with pytest.raises(ExecutionError):
            list(SeqScan("ghost", "g").execute(runtime(db)))


class TestIndexSeek:
    def test_equality_seek(self, db):
        index = db.create_index("ix_v", "t", ["v"])
        rt = runtime(db)
        seek = IndexSeek(index, "t", "t", [lambda env: "v2"])
        rows = list(seek.execute(rt))
        assert len(rows) == 10
        assert all(env["t"][1] == "v2" for env in rows)
        assert rt.counter.random_pages > 0
        db.catalog.drop_index("ix_v")

    def test_null_seek_matches_nothing(self, db):
        index = db.create_index("ix_v2", "t", ["v"])
        seek = IndexSeek(index, "t", "t", [lambda env: None])
        assert list(seek.execute(runtime(db))) == []
        db.catalog.drop_index("ix_v2")

    def test_range_seek(self, db):
        index = db.create_index("ix_id", "t", ["ID"])
        seek = IndexSeek(index, "t", "t", [],
                         range_bounds=(5, True, 9, True))
        rows = list(seek.execute(runtime(db)))
        assert sorted(env["t"][0] for env in rows) == [5, 6, 7, 8, 9]
        db.catalog.drop_index("ix_id")

    def test_covering_skips_fetch_charges(self, db):
        index = db.create_index("ix_v3", "t", ["v"])
        rt_fetch = runtime(db)
        list(IndexSeek(index, "t", "t", [lambda env: "v0"],
                       covering=False).execute(rt_fetch))
        rt_cover = runtime(db)
        list(IndexSeek(index, "t", "t", [lambda env: "v0"],
                       covering=True).execute(rt_cover))
        assert rt_cover.counter.random_pages < rt_fetch.counter.random_pages
        db.catalog.drop_index("ix_v3")


class TestJoins:
    def test_block_nested_loop(self, db):
        join = NestedLoopJoin(
            SeqScan("t", "t"), SeqScan("u", "u"),
            predicate=lambda env: env["t"][0] == env["u"][1])
        rows = list(join.execute(runtime(db)))
        expected = sum(1 for trow in db.catalog.table("t").rows
                       for urow in db.catalog.table("u").rows
                       if trow[0] == urow[1])
        assert len(rows) == expected

    def test_semijoin_with_materialized_keys(self, db):
        semi = SemiJoinExists(
            SeqScan("t", "t"), SeqScan("u", "u"),
            outer_keys=[lambda env: env["t"][0]],
            inner_keys=[lambda env: env["u"][1]])
        rows = list(semi.execute(runtime(db)))
        pids = {urow[1] for urow in db.catalog.table("u").rows}
        assert len(rows) == sum(1 for trow in db.catalog.table("t").rows
                                if trow[0] in pids)

    def test_semijoin_with_index_probe(self, db):
        index = db.create_index("ix_pid", "u", ["PID"])
        probe = IndexSeek(index, "u", "u",
                          [lambda env: env["t"][0]])
        semi = SemiJoinExists(SeqScan("t", "t"), probe)
        rows = list(semi.execute(runtime(db)))
        pids = {urow[1] for urow in db.catalog.table("u").rows}
        assert len(rows) == sum(1 for trow in db.catalog.table("t").rows
                                if trow[0] in pids)
        db.catalog.drop_index("ix_pid")


class TestCostCounter:
    def test_total_combines_components(self):
        counter = CostCounter()
        counter.charge_seq_pages(10)
        counter.charge_random_pages(2)
        counter.charge_tuples(100)
        assert counter.total > 10 + 8

    def test_merge(self):
        a, b = CostCounter(), CostCounter()
        a.charge_seq_pages(5)
        b.charge_seq_pages(7)
        b.charge_hash(3)
        a.merge(b)
        assert a.seq_pages == 12
        assert a.hash_tuples == 3

    def test_determinism(self, db):
        costs = {db.execute("SELECT t.ID FROM t WHERE t.v = 'v1'").cost
                 for _ in range(3)}
        assert len(costs) == 1
