"""SQL dialects: render ``repro.sqlast`` trees and catalog DDL.

``str(query)`` already yields SQL that most engines mostly accept, but
a dialect is deliberately explicit about everything where "mostly" is
not good enough:

* **Identifier quoting** — every table/column/alias is ``"quoted"`` so
  schema-derived names can never collide with keywords.
* **Type affinity** — each dialect declares how the engine's logical
  :class:`~repro.engine.SQLType` maps onto physical column types (see
  the per-dialect notes below and docs/backends.md).
* **Covering indexes** — neither SQLite nor DuckDB has an ``INCLUDE``
  clause; included columns are appended to the key so the index still
  covers the query.
* **Materialized structures** — join views become populated tables
  (``CREATE TABLE ... AS SELECT``), matching how the engine's size and
  cost accounting treats them.

:class:`SQLiteDialect` (the historical default — the module-level
functions delegate to its singleton for backward compatibility):

* DATE maps to TEXT affinity: the engine stores dates as strings, and
  SQLite's own NUMERIC affinity for ``DATE`` would coerce year-like
  strings to integers and re-order mixed columns.
* BOOLEAN maps to INTEGER (the engine compares/sorts booleans
  numerically) and DECIMAL to REAL; bound booleans are stored as 0/1.

:class:`DuckDBDialect` keeps DECIMAL as ``DECIMAL(18, 6)`` and BOOLEAN
as a real ``BOOLEAN`` column — the divergences the comparator must
reconcile (see docs/backends.md "Backend matrix"). Six fractional
digits are enough for the generated datasets (one fractional digit) to
round-trip exactly through the decimal column. DATE stays VARCHAR for
the same string-storage reason as SQLite, and boolean literals render
as ``TRUE``/``FALSE`` because DuckDB's comparison of ``BOOLEAN`` with
an integer literal requires an explicit cast.

Ordering semantics line up without translation work for both dialects:
SQLite orders ``NULL < numeric < text`` ascending, exactly the
engine's ``encode_key`` order, and ``ORDER BY <position>`` after
``UNION ALL`` is supported natively by both engines.
"""

from __future__ import annotations

from ..engine import Index, JoinViewDefinition, SQLType, Table
from ..errors import ReproError
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, Exists, IsNull,
                      Literal, Or, Query, Scalar, Select, SelectItem,
                      TableRef)

__all__ = [
    "Dialect", "SQLiteDialect", "DuckDBDialect", "DialectError",
    "SQLITE", "DUCKDB", "dialect_for",
    # Back-compat module-level functions (SQLite dialect).
    "quote_identifier", "sqlite_type", "SQLITE_TYPES",
    "render_scalar", "render_condition", "render_select", "render_query",
    "create_table_sql", "insert_sql", "create_index_sql",
    "create_view_table_sql",
]


class DialectError(ReproError):
    """An AST node the dialect cannot render."""


class Dialect:
    """Rendering rules for one SQL engine.

    Subclasses override the ``name``/``types`` class attributes and, if
    needed, the :meth:`literal` / :meth:`storable` hooks. Everything
    else (expression and statement rendering, DDL/DML) is shared — the
    supported AST surface is identical across engines; only spellings
    of types and constants differ.
    """

    #: Dialect key as used by ``--backend`` / ``dialect_for``.
    name = "ansi"

    #: Logical :class:`SQLType` -> physical column type name.
    types: dict[SQLType, str] = {
        SQLType.INTEGER: "INTEGER",
        SQLType.DECIMAL: "DECIMAL",
        SQLType.VARCHAR: "VARCHAR",
        SQLType.DATE: "DATE",
        SQLType.BOOLEAN: "BOOLEAN",
    }

    # -- hooks ---------------------------------------------------------
    def quote(self, name: str) -> str:
        return '"' + name.replace('"', '""') + '"'

    def type_name(self, sql_type: SQLType) -> str:
        return self.types[sql_type]

    def literal(self, literal: Literal) -> str:
        """Render one constant.

        ``Literal.__str__`` already yields portable spellings (doubled
        quotes, 1/0 booleans, repr'd finite floats, NULL); dialects
        with genuine boolean columns override this.
        """
        return str(literal)

    def storable(self, value: object) -> object:
        """Convert one typed-row value into a driver binding."""
        return value

    # -- expressions ---------------------------------------------------
    def render_scalar(self, expr: Scalar) -> str:
        if isinstance(expr, Literal):
            return self.literal(expr)
        if isinstance(expr, ColumnRef):
            column = self.quote(expr.column)
            if expr.table:
                return f"{self.quote(expr.table)}.{column}"
            return column
        raise DialectError(f"cannot render scalar {expr!r}")

    def render_condition(self, expr: BoolExpr) -> str:
        if isinstance(expr, Comparison):
            return (f"{self.render_scalar(expr.left)} {expr.op.value} "
                    f"{self.render_scalar(expr.right)}")
        if isinstance(expr, IsNull):
            suffix = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"{self.render_scalar(expr.operand)} {suffix}"
        if isinstance(expr, And):
            return " AND ".join(f"({self.render_condition(i)})"
                                for i in expr.items)
        if isinstance(expr, Or):
            return " OR ".join(f"({self.render_condition(i)})"
                               for i in expr.items)
        if isinstance(expr, Exists):
            return f"EXISTS ({self.render_select(expr.subquery)})"
        raise DialectError(f"cannot render condition {expr!r}")

    # -- statements ----------------------------------------------------
    # render_table_ref / render_item are public: repro.sqlast.render
    # calls them (structurally, to avoid a layering cycle) when asked
    # to pretty-print in a specific dialect.
    def render_table_ref(self, ref: TableRef) -> str:
        table = self.quote(ref.table)
        if ref.alias and ref.alias != ref.table:
            return f"{table} AS {self.quote(ref.alias)}"
        return table

    def render_item(self, item: SelectItem) -> str:
        rendered = self.render_scalar(item.expr)
        if item.alias:
            return f"{rendered} AS {self.quote(item.alias)}"
        return rendered

    def render_select(self, select: Select) -> str:
        parts = ["SELECT " + ", ".join(self.render_item(i)
                                       for i in select.items)]
        parts.append("FROM " + ", ".join(self.render_table_ref(t)
                                         for t in select.from_tables))
        if select.where is not None:
            parts.append("WHERE " + self.render_condition(select.where))
        return " ".join(parts)

    def render_query(self, query: Query) -> str:
        """One translated query as a single statement."""
        body = " UNION ALL ".join(self.render_select(s)
                                  for s in query.selects)
        if query.order_by:
            body += " ORDER BY " + ", ".join(str(p) for p in query.order_by)
        return body

    # -- DDL / DML -----------------------------------------------------
    def create_table_sql(self, table: Table) -> str:
        columns = []
        for column in table.columns:
            decl = f"{self.quote(column.name)} {self.type_name(column.sql_type)}"
            if table.primary_key == column.name:
                decl += " PRIMARY KEY"
            columns.append(decl)
        return (f"CREATE TABLE {self.quote(table.name)} "
                f"({', '.join(columns)})")

    def insert_sql(self, table: Table) -> str:
        names = ", ".join(self.quote(c.name) for c in table.columns)
        marks = ", ".join("?" for _ in table.columns)
        return (f"INSERT INTO {self.quote(table.name)} ({names}) "
                f"VALUES ({marks})")

    def create_index_sql(self, index: Index) -> str:
        # No INCLUDE clause: appending the included columns to the key
        # preserves the covering property (at a modest key-width cost).
        columns = ", ".join(self.quote(c) for c in index.all_columns)
        return (f"CREATE INDEX {self.quote(index.name)} "
                f"ON {self.quote(index.table_name)} ({columns})")

    def create_view_table_sql(self, name: str,
                              definition: JoinViewDefinition) -> str:
        """A join view, materialized as a populated table."""
        items = []
        for view_col, (source_table, source_col) in definition.columns:
            alias = "P" if source_table == definition.parent_table else "C"
            items.append(f"{alias}.{self.quote(source_col)} "
                         f"AS {self.quote(view_col)}")
        return (
            f"CREATE TABLE {self.quote(name)} AS "
            f"SELECT {', '.join(items)} "
            f"FROM {self.quote(definition.parent_table)} AS P, "
            f"{self.quote(definition.child_table)} AS C "
            f"WHERE C.{self.quote(definition.child_fk_column)} = P.\"ID\"")


class SQLiteDialect(Dialect):
    """SQLite spellings — see the module docstring for the rationale."""

    name = "sqlite"

    types = {
        SQLType.INTEGER: "INTEGER",
        SQLType.DECIMAL: "REAL",
        SQLType.VARCHAR: "TEXT",
        SQLType.DATE: "TEXT",      # engine stores dates as strings
        SQLType.BOOLEAN: "INTEGER",  # engine compares/sorts them numerically
    }

    def storable(self, value: object) -> object:
        # BOOLEAN columns have INTEGER affinity; store 0/1 so that
        # comparisons against rendered 1/0 literals match.
        if isinstance(value, bool):
            return int(value)
        return value


class DuckDBDialect(Dialect):
    """DuckDB spellings — DECIMAL and BOOLEAN stay first-class.

    The deliberate divergences from :class:`SQLiteDialect`:

    * DECIMAL columns are ``DECIMAL(18, 6)`` (exact for the generated
      datasets' one fractional digit), not REAL.
    * BOOLEAN columns are real booleans, and boolean *literals* render
      as ``TRUE``/``FALSE`` — DuckDB will not implicitly compare a
      BOOLEAN column against the bare integer ``1``.
    * DATE stays VARCHAR: the engine stores date values as strings and
      compares them lexicographically, which for ISO dates is the same
      order DuckDB's DATE type would give, without parsing surprises.
    """

    name = "duckdb"

    types = {
        # SQLite's INTEGER affinity is 64-bit; DuckDB's INTEGER is
        # 32-bit, so BIGINT is the semantic match (element IDs grow
        # with document scale).
        SQLType.INTEGER: "BIGINT",
        SQLType.DECIMAL: "DECIMAL(18, 6)",
        SQLType.VARCHAR: "VARCHAR",
        SQLType.DATE: "VARCHAR",   # engine stores dates as strings
        SQLType.BOOLEAN: "BOOLEAN",
    }

    def literal(self, literal: Literal) -> str:
        if isinstance(literal.value, bool):
            return "TRUE" if literal.value else "FALSE"
        return str(literal)

    def storable(self, value: object) -> object:
        # bool binds natively to BOOLEAN columns; everything else the
        # driver handles (floats are cast into DECIMAL(18, 6) exactly
        # for the one-fractional-digit dataset values).
        return value


SQLITE = SQLiteDialect()
DUCKDB = DuckDBDialect()

_DIALECTS = {d.name: d for d in (SQLITE, DUCKDB)}


def dialect_for(name: str) -> Dialect:
    """The dialect registered under ``name`` (``sqlite`` / ``duckdb``)."""
    try:
        return _DIALECTS[name]
    except KeyError:
        known = ", ".join(sorted(_DIALECTS))
        raise DialectError(
            f"unknown SQL dialect {name!r} (known: {known})") from None


# ----------------------------------------------------------------------
# Backward-compatible module-level API (the SQLite dialect)
# ----------------------------------------------------------------------

SQLITE_TYPES = SQLiteDialect.types


def quote_identifier(name: str) -> str:
    return SQLITE.quote(name)


def sqlite_type(sql_type: SQLType) -> str:
    return SQLITE.type_name(sql_type)


def render_scalar(expr: Scalar) -> str:
    return SQLITE.render_scalar(expr)


def render_condition(expr: BoolExpr) -> str:
    return SQLITE.render_condition(expr)


def render_select(select: Select) -> str:
    return SQLITE.render_select(select)


def render_query(query: Query) -> str:
    """One translated query as a single SQLite statement."""
    return SQLITE.render_query(query)


def create_table_sql(table: Table) -> str:
    return SQLITE.create_table_sql(table)


def insert_sql(table: Table) -> str:
    return SQLITE.insert_sql(table)


def create_index_sql(index: Index) -> str:
    return SQLITE.create_index_sql(index)


def create_view_table_sql(name: str, definition: JoinViewDefinition) -> str:
    return SQLITE.create_view_table_sql(name, definition)
