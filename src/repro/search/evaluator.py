"""Shared machinery: evaluate the cost of one mapping.

Evaluating a mapping (paper Fig. 2's loop body) means:

1. derive its relational schema,
2. install stats-only tables with statistics *derived* from the
   fully-split collection (no data is ever loaded during search),
3. translate the XPath workload to SQL against that schema,
4. call the physical design tool (tuning advisor), which returns the
   recommended configuration, per-query estimated costs, and the object
   sets ``I(Q, M)``.

Evaluations are memoized by mapping signature — this implements the
paper's "carefully avoids searching duplicated mappings".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Database
from ..errors import SearchError, TranslationError
from ..mapping import (CollectedStats, MappedSchema, Mapping, derive_schema,
                       derive_table_stats)
from ..physdesign import IndexTuningAdvisor, TuningResult
from ..sqlast import Query
from ..translate import Translator
from ..workload import Workload
from .result import SearchCounters


@dataclass
class EvaluatedMapping:
    """One costed mapping."""

    mapping: Mapping
    schema: MappedSchema
    database: Database
    sql_queries: list[tuple[Query, float]]
    tuning: TuningResult

    @property
    def total_cost(self) -> float:
        return self.tuning.total_cost


def build_stats_only_database(schema: MappedSchema,
                              collected: CollectedStats) -> Database:
    """A data-free database whose tables carry derived statistics."""
    db = Database(name=f"whatif:{id(schema)}")
    table_stats = derive_table_stats(schema, collected)
    for table in schema.to_engine_tables():
        db.register_table(table)
    for name, stats in table_stats.items():
        db.set_table_stats(name, stats)
    return db


class MappingEvaluator:
    """Costs mappings for one (tree, workload, stats, bound) problem."""

    def __init__(self, workload: Workload, collected: CollectedStats,
                 storage_bound: int | None = None,
                 use_cache: bool = True,
                 counters: SearchCounters | None = None):
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.use_cache = use_cache
        self.counters = counters or SearchCounters()
        self._cache: dict[tuple, EvaluatedMapping | None] = {}
        self._partial_cache: dict[tuple, EvaluatedMapping | None] = {}

    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EvaluatedMapping | None:
        """Cost a mapping; ``None`` when the workload cannot be
        translated under it (infeasible mapping)."""
        key = mapping.signature()
        if self.use_cache and key in self._cache:
            self.counters.cache_hits += 1
            return self._cache[key]
        result = self._evaluate_uncached(mapping)
        if self.use_cache:
            self._cache[key] = result
        return result

    def cached(self, mapping: Mapping) -> EvaluatedMapping | None:
        """An already-computed exact evaluation, if any (no work done)."""
        if not self.use_cache:
            return None
        return self._cache.get(mapping.signature())

    def _update_load(self, schema: MappedSchema) -> dict[str, float]:
        """Row-insert rates per table for this mapping (extension)."""
        if not self.workload.updates:
            return {}
        from .updates import update_load_for
        return update_load_for(schema, self.collected, self.workload)

    def translate_workload(self, schema: MappedSchema
                           ) -> list[tuple[Query, float]]:
        translator = Translator(schema)
        return [(translator.translate(wq.query), wq.weight)
                for wq in self.workload]

    def _evaluate_uncached(self, mapping: Mapping) -> EvaluatedMapping | None:
        self.counters.mappings_evaluated += 1
        schema = derive_schema(mapping)
        try:
            sql_queries = self.translate_workload(schema)
        except TranslationError:
            return None
        db = build_stats_only_database(schema, self.collected)
        advisor = IndexTuningAdvisor(db)
        try:
            tuning = advisor.tune(sql_queries, self.storage_bound,
                                  update_load=self._update_load(schema))
        except SearchError:
            return None
        self.counters.tuner_calls += 1
        self.counters.optimizer_calls += tuning.optimizer_calls
        return EvaluatedMapping(mapping=mapping, schema=schema, database=db,
                                sql_queries=sql_queries, tuning=tuning)

    # ------------------------------------------------------------------
    def evaluate_partial(self, mapping: Mapping,
                         reuse: dict[int, float]) -> EvaluatedMapping | None:
        """Cost a mapping, reusing known per-query costs (Section 4.8).

        ``reuse`` maps workload indices to already-known costs; only the
        remaining queries are passed to the physical design tool, which
        is what makes cost derivation cheaper.
        """
        key = (mapping.signature(),
               frozenset((i, round(cost, 6)) for i, cost in reuse.items()))
        if self.use_cache and key in self._partial_cache:
            self.counters.cache_hits += 1
            return self._partial_cache[key]
        result = self._evaluate_partial_uncached(mapping, reuse)
        if self.use_cache:
            self._partial_cache[key] = result
        return result

    def _evaluate_partial_uncached(self, mapping: Mapping,
                                   reuse: dict[int, float]
                                   ) -> EvaluatedMapping | None:
        self.counters.mappings_evaluated += 1
        schema = derive_schema(mapping)
        try:
            sql_queries = self.translate_workload(schema)
        except TranslationError:
            return None
        db = build_stats_only_database(schema, self.collected)
        remaining = [(q, w) for i, (q, w) in enumerate(sql_queries)
                     if i not in reuse]
        advisor = IndexTuningAdvisor(db)
        try:
            tuning = advisor.tune(remaining, self.storage_bound,
                                  update_load=self._update_load(schema))
        except SearchError:
            return None
        self.counters.tuner_calls += 1
        self.counters.optimizer_calls += tuning.optimizer_calls
        self.counters.derived_query_costs += len(reuse)
        reused_cost = sum(self.workload.queries[i].weight * cost
                          for i, cost in reuse.items())
        # Patch the tuning result so downstream reporting sees the full
        # workload cost.
        tuning.total_cost += reused_cost
        return EvaluatedMapping(mapping=mapping, schema=schema, database=db,
                                sql_queries=sql_queries, tuning=tuning)
