"""Tests for the update-workload extension (paper's future work)."""

import pytest

from repro.datasets import dblp_schema, generate_dblp
from repro.engine import Column, Database, SQLType
from repro.errors import WorkloadError
from repro.mapping import collect_statistics, derive_schema, hybrid_inlining
from repro.physdesign import IndexTuningAdvisor
from repro.search import GreedySearch, MappingEvaluator, update_load_for
from repro.sqlast import parse_sql
from repro.workload import WeightedUpdate, Workload
from repro.xpath import parse_xpath


@pytest.fixture(scope="module")
def bundle():
    tree = dblp_schema()
    doc = generate_dblp(800, seed=29)
    return tree, collect_statistics(tree, doc)


class TestModel:
    def test_update_target_must_be_plain_path(self):
        with pytest.raises(WorkloadError):
            WeightedUpdate(parse_xpath('//inproceedings[year = "2000"]'))
        with pytest.raises(WorkloadError):
            WeightedUpdate(parse_xpath("//inproceedings/(title | year)"))

    def test_add_update(self):
        wl = Workload("w")
        wl.add_update("//inproceedings", weight=2.0)
        assert len(wl.updates) == 1

    def test_weight_positive(self):
        with pytest.raises(WorkloadError):
            WeightedUpdate(parse_xpath("//inproceedings"), weight=-1)


class TestUpdateLoad:
    def test_load_fans_out_to_child_tables(self, bundle):
        tree, stats = bundle
        schema = derive_schema(hybrid_inlining(tree))
        wl = Workload("w")
        wl.add_update("/dblp/inproceedings", weight=1.0)
        load = update_load_for(schema, stats, wl)
        assert load["inproc"] == pytest.approx(1.0, rel=0.05)
        # ~2-3 authors per publication on average.
        assert 1.0 < load["author"] < 4.0
        # Books are untouched by inproceedings inserts.
        assert "book" not in load

    def test_load_scales_with_weight(self, bundle):
        tree, stats = bundle
        schema = derive_schema(hybrid_inlining(tree))
        wl = Workload("w")
        wl.add_update("/dblp/inproceedings", weight=5.0)
        load = update_load_for(schema, stats, wl)
        assert load["inproc"] == pytest.approx(5.0, rel=0.05)

    def test_no_updates_means_empty_load(self, bundle):
        tree, stats = bundle
        schema = derive_schema(hybrid_inlining(tree))
        assert update_load_for(schema, stats, Workload("w")) == {}


class TestAdvisorMaintenance:
    def make_db(self):
        import random
        rng = random.Random(1)
        db = Database()
        db.create_table("t", [Column("ID", SQLType.INTEGER, False),
                              Column("PID", SQLType.INTEGER),
                              Column("k", SQLType.VARCHAR),
                              Column("wide", SQLType.VARCHAR)])
        db.insert_rows("t", [(i, 0, f"k{rng.randrange(50)}", "x" * 30)
                             for i in range(5000)])
        db.analyze()
        db.build_primary_key_indexes()
        return db

    def test_heavy_update_load_suppresses_indexes(self):
        db = self.make_db()
        workload = [(parse_sql("SELECT t.wide FROM t WHERE t.k = 'k7'"), 1.0)]
        advisor = IndexTuningAdvisor(db)
        without = advisor.tune(workload)
        assert len(without.configuration.indexes) >= 1
        crushed = advisor.tune(workload, update_load={"t": 10_000.0})
        assert len(crushed.configuration) < len(without.configuration)

    def test_mild_update_load_keeps_worthwhile_indexes(self):
        db = self.make_db()
        workload = [(parse_sql("SELECT t.wide FROM t WHERE t.k = 'k7'"),
                     100.0)]
        advisor = IndexTuningAdvisor(db)
        result = advisor.tune(workload, update_load={"t": 0.1})
        assert len(result.configuration.indexes) >= 1

    def test_total_cost_includes_maintenance(self):
        db = self.make_db()
        workload = [(parse_sql("SELECT t.wide FROM t WHERE t.k = 'k7'"), 1.0)]
        advisor = IndexTuningAdvisor(db)
        quiet = advisor.tune(workload)
        busy = advisor.tune(workload, update_load={"t": 50.0})
        assert busy.total_cost > quiet.total_cost


class TestSearchWithUpdates:
    def test_greedy_runs_with_update_load(self, bundle):
        tree, stats = bundle
        workload = Workload.from_strings("w", [
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | author)'])
        workload.add_update("/dblp/inproceedings", weight=0.5)
        result = GreedySearch(tree, workload, stats).run()
        assert result.estimated_cost > 0

    def test_update_heavy_design_is_leaner(self, bundle):
        tree, stats = bundle
        read_only = Workload.from_strings("ro", [
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | author)',
            '/dblp/inproceedings[year = "2000"]/(title | ee)'])
        write_heavy = Workload.from_strings("wh", [
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | author)',
            '/dblp/inproceedings[year = "2000"]/(title | ee)'])
        write_heavy.add_update("/dblp/inproceedings", weight=500.0)
        evaluator_ro = MappingEvaluator(read_only, stats)
        evaluator_wh = MappingEvaluator(write_heavy, stats)
        mapping = hybrid_inlining(tree)
        lean = evaluator_wh.evaluate(mapping)
        rich = evaluator_ro.evaluate(mapping)
        assert len(lean.tuning.configuration) <= \
            len(rich.tuning.configuration)
