"""Deterministic fault injection for the search/advisor stack.

A :class:`FaultPlan` is a seeded set of :class:`FaultRule`\\ s, each
bound to a **named site** in the code. Instrumented call sites ask the
globally installed plan whether to misbehave *this* invocation; the
answer is a pure function of ``(seed, site, per-site invocation
count)``, so a given plan produces the same fault sequence on every
serial run — failure paths become exercisable in tests and CI instead
of only in production.

Sites (see docs/resilience.md for the full table):

=================== ====================================================
``evaluate``        one candidate-mapping evaluation (worker or serial)
``advisor``         entry of :meth:`IndexTuningAdvisor.tune`
``whatif``          one what-if optimizer call (:meth:`Database.estimate`)
``pool.submit``     submission of a batch to the evaluation pool
``cache.read``      a persistent-cache lookup
``cache.write``     a persistent-cache store (supports ``torn`` writes)
``checkpoint.write`` a search-checkpoint write
``serve.request``   one query-service request attempt (worker thread)
``serve.translate`` one plan-cache XPath→SQL translation
``backend.execute`` one backend query execution (the serve path)
``backend.connect`` opening a backend connection (incl. per-thread)
``backend.load.batch`` one bulk-load batch insert
=================== ====================================================

Fault kinds:

* ``transient`` — raises a retryable :class:`~repro.errors.InjectedFault`;
* ``fatal``     — raises a non-retryable one (propagates; kills the run);
* ``hang``      — sleeps ``duration`` seconds (a slow/stuck worker);
* ``torn``      — for write sites: the payload is truncated half-way,
  simulating a torn write that survived a rename.

Plans are configured from the ``REPRO_FAULTS`` environment variable or
the ``--faults`` CLI flag with a spec like::

    seed=42;evaluate:0.2:transient;cache.read:0.1

(tokens separated by ``;`` or ``,``; each site token is
``site:rate[:kind[:duration[:after]]]`` — ``after`` arms the rule only
from invocation ``after + 1`` of the site on, so ``evaluate:1:fatal:0:40``
deterministically kills the 41st evaluation). The plan travels to
process-pool workers as its spec string; each worker rebuilds it with
fresh per-site counters.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import (CheckError, EvaluationTimeout, InjectedFault,
                      MappingError, ReproError, TranslationError)

__all__ = ["FaultRule", "FaultPlan", "NULL_PLAN", "active_fault_plan",
           "install_fault_plan", "classify", "RETRYABLE_CATEGORIES"]

_KINDS = ("transient", "fatal", "hang", "torn")


@dataclass(frozen=True)
class FaultRule:
    """One site's misbehavior: fire with ``rate`` probability.

    ``after`` arms the rule only from invocation ``after + 1`` on —
    with ``rate=1.0`` this fires at exactly one deterministic point,
    which is how tests kill a search mid-flight.
    """

    site: str
    rate: float
    kind: str = "transient"
    duration: float = 0.25  # seconds, for ``hang``
    after: int = 0          # skip the site's first ``after`` invocations

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {_KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], "
                             f"got {self.rate!r}")

    def to_token(self) -> str:
        return (f"{self.site}:{self.rate}:{self.kind}:{self.duration}"
                f":{self.after}")


class FaultPlan:
    """A seeded, deterministic schedule of faults at named sites.

    Whether invocation *n* of a site faults is decided by hashing
    ``(seed, site, n)`` — no shared RNG stream, so adding a rule for one
    site never shifts another site's fault sequence, and a plan rebuilt
    from its spec (e.g. inside a pool worker) replays identically.
    """

    def __init__(self, rules: list[FaultRule] | None = None, seed: int = 0):
        self.seed = seed
        self.rules: dict[str, FaultRule] = {r.site: r for r in (rules or [])}
        self._counts: dict[str, int] = {}
        # Serve-pool threads hit maybe_raise concurrently; an unlocked
        # read-modify-write of the per-site counter would let two
        # threads claim the same invocation number (double-firing one
        # scheduled fault and skipping another).
        self._count_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self.rules)

    def to_spec(self) -> str:
        tokens = [f"seed={self.seed}"]
        tokens += [self.rules[site].to_token()
                   for site in sorted(self.rules)]
        return ";".join(tokens)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``seed=N;site:rate[:kind[:duration]];...``."""
        seed = 0
        rules: list[FaultRule] = []
        for raw in spec.replace(",", ";").split(";"):
            token = raw.strip()
            if not token:
                continue
            if token.startswith("seed="):
                seed = int(token[len("seed="):])
                continue
            parts = token.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault token {token!r} (expected "
                    f"site:rate[:kind[:duration]])")
            site, rate = parts[0], float(parts[1])
            kind = parts[2] if len(parts) > 2 else "transient"
            duration = float(parts[3]) if len(parts) > 3 else 0.25
            after = int(parts[4]) if len(parts) > 4 else 0
            rules.append(FaultRule(site, rate, kind, duration, after))
        return cls(rules, seed=seed)

    # ------------------------------------------------------------------
    def fire(self, site: str) -> FaultRule | None:
        """The rule to apply for this invocation of ``site``, if any."""
        if not self.rules:
            return None
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._count_lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
        if count <= rule.after:
            return None
        if rule.rate >= 1.0:
            return rule
        digest = hashlib.sha1(
            f"{self.seed}|{site}|{count}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2 ** 64
        return rule if draw < rule.rate else None

    def maybe_raise(self, site: str) -> None:
        """Raise/sleep per the site's rule; no-op when it doesn't fire."""
        rule = self.fire(site)
        if rule is None:
            return
        if rule.kind == "hang":
            time.sleep(rule.duration)
            return
        raise InjectedFault(site, retryable=(rule.kind != "fatal"))

    def reset(self) -> None:
        """Forget invocation counts (a fresh deterministic replay)."""
        with self._count_lock:
            self._counts.clear()


#: The disabled plan: every query is a fast no-op.
NULL_PLAN = FaultPlan()

_ACTIVE: FaultPlan | None = None


def _from_env() -> FaultPlan:
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    return FaultPlan.from_spec(spec) if spec else NULL_PLAN


def install_fault_plan(plan: "FaultPlan | str | None") -> FaultPlan:
    """Install a plan (or a spec string); ``None`` reverts to the
    ``REPRO_FAULTS`` environment default."""
    global _ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    _ACTIVE = plan if plan is not None else _from_env()
    return _ACTIVE


def active_fault_plan() -> FaultPlan:
    """The installed plan; lazily resolved from ``REPRO_FAULTS``."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _from_env()
    return _ACTIVE


# ----------------------------------------------------------------------
# Fault classification
# ----------------------------------------------------------------------

#: Categories the retry policy is allowed to re-attempt.
RETRYABLE_CATEGORIES = frozenset({"transient", "infrastructure"})


def classify(exc: BaseException) -> str:
    """Bucket an exception for the retry/degradation policy.

    ``transient``       injected retryable fault — retry in place
    ``infrastructure``  broken pool / OS / pickling — retry or degrade
    ``timeout``         a deadline fired — degrade, never re-run in place
    ``inapplicable``    a transformation does not apply — benign skip
    ``infeasible``      the mapping cannot serve the workload
    ``fatal``           everything else — propagate
    """
    if isinstance(exc, InjectedFault):
        return "transient" if exc.retryable else "fatal"
    if isinstance(exc, ReproError) and getattr(exc, "retryable", False):
        # Library errors that declare themselves retryable — e.g. the
        # SQLite backend's SQLITE_BUSY/SQLITE_LOCKED wrapper — without
        # this module having to import every backend's exception types.
        return "transient"
    if isinstance(exc, EvaluationTimeout):
        return "timeout"
    if isinstance(exc, CheckError):
        return "fatal"
    if isinstance(exc, TranslationError):
        return "infeasible"
    if isinstance(exc, MappingError):
        return "inapplicable"
    if isinstance(exc, ReproError):
        return "fatal"
    if isinstance(exc, TimeoutError):  # before OSError: it subclasses it
        return "timeout"
    if isinstance(exc, (BrokenProcessPool, OSError, pickle.PicklingError)):
        return "infrastructure"
    return "fatal"
