"""Experiment harness: data bundles, design realization, measurement.

The quality measure follows the paper (Section 5.1.4): workload
execution cost on the *loaded* relational database with the recommended
indexes and materialized views built, normalized to the hybrid-inlining
mapping with its own recommended physical design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import (dblp_schema, generate_dblp, generate_movies,
                        movie_schema)
from ..engine import Database
from ..mapping import (CollectedStats, MappedSchema, Mapping,
                       collect_statistics, derive_schema, hybrid_inlining,
                       load_documents)
from ..physdesign import Configuration, IndexTuningAdvisor, materialize
from ..search import DesignResult, MappingEvaluator
from ..sqlast import Query
from ..workload import Workload, WorkloadGenerator
from ..xmlkit import Document
from ..xsd import SchemaTree

DEFAULT_STORAGE_BOUND = 512 * 1024 * 1024


@dataclass
class DatasetBundle:
    """A schema, its documents, and pre-collected statistics."""

    name: str
    tree: SchemaTree
    docs: Document
    stats: CollectedStats
    storage_bound: int = DEFAULT_STORAGE_BOUND

    @classmethod
    def dblp(cls, scale: int = 1500, seed: int = 7,
             storage_bound: int = DEFAULT_STORAGE_BOUND,
             stream: bool = False) -> "DatasetBundle":
        tree = dblp_schema()
        docs = generate_dblp(scale, seed=seed, stream=stream)
        return cls("DBLP", tree, docs, collect_statistics(tree, docs),
                   storage_bound)

    @classmethod
    def movie(cls, scale: int = 1500, seed: int = 7,
              storage_bound: int = DEFAULT_STORAGE_BOUND,
              stream: bool = False) -> "DatasetBundle":
        tree = movie_schema()
        docs = generate_movies(scale, seed=seed, stream=stream)
        return cls("Movie", tree, docs, collect_statistics(tree, docs),
                   storage_bound)

    def workload_generator(self, seed: int = 0) -> WorkloadGenerator:
        return WorkloadGenerator(self.tree, self.stats, seed=seed)


# Loaded databases are cached per (document set, relational schema):
# measuring several configurations of the same mapping only re-shreds
# once. The cache strips any previously materialized physical design
# before handing the database back.
_REALIZE_CACHE: dict[tuple, Database] = {}


def realize(schema: MappedSchema, configuration: Configuration,
            docs: Document, use_cache: bool = True) -> Database:
    """Load documents under the mapping and build the physical design."""
    key = (id(docs), schema.signature())
    db = _REALIZE_CACHE.get(key) if use_cache else None
    if db is None:
        db = Database(name="realized")
        load_documents(db, schema, docs)
        if use_cache:
            _REALIZE_CACHE[key] = db
    else:
        for view in list(db.catalog.views()):
            db.catalog.drop_table(view.name)
        for name in [n for n in db.catalog.indexes
                     if not n.startswith("pk_")]:
            db.catalog.drop_index(name)
    materialize(db, configuration)
    return db


def clear_realize_cache() -> None:
    """Drop cached loaded databases (tests and memory-sensitive runs)."""
    _REALIZE_CACHE.clear()


def measure_workload(db: Database,
                     sql_queries: list[tuple[Query, float]]) -> float:
    """Weighted executed cost of the workload (deterministic)."""
    total = 0.0
    for sql, weight in sql_queries:
        total += weight * db.execute(sql).cost
    return total


def measure_workload_sqlite(schema: MappedSchema,
                            configuration: Configuration,
                            sql_queries: list[tuple[Query, float]],
                            docs: Document, repeat: int = 3,
                            warmup: int = 1) -> float:
    """Weighted measured wall-clock seconds of the workload on SQLite.

    A fresh in-memory SQLite database per call: bulk-load, build the
    physical design for real, then time every query with warmup and
    repetition (median run). Unlike :func:`measure_workload` this is
    *not* deterministic — it is the real-DBMS ground truth the engine's
    cost units are calibrated against (``repro calibrate``).
    """
    from ..backends import SQLiteBackend
    with SQLiteBackend() as backend:
        backend.load(schema, docs)
        backend.apply_configuration(configuration)
        return sum(
            weight * backend.time_query(query, repeat=repeat,
                                        warmup=warmup).seconds
            for query, weight in sql_queries)


def measure_design(result: DesignResult, bundle: DatasetBundle,
                   backend: str = "engine") -> float:
    """Realize a search result on real data and measure the workload.

    ``backend="engine"`` (default) reports deterministic cost units;
    ``backend="sqlite"`` reports measured wall-clock seconds.
    """
    if backend == "sqlite":
        return measure_workload_sqlite(result.schema, result.configuration,
                                       result.sql_queries, bundle.docs)
    if backend != "engine":
        raise ValueError(f"unknown backend {backend!r}")
    db = realize(result.schema, result.configuration, bundle.docs)
    return measure_workload(db, result.sql_queries)


@dataclass
class Baseline:
    """The hybrid-inlining + tuned-physical-design normalizer."""

    schema: MappedSchema
    configuration: Configuration
    sql_queries: list[tuple[Query, float]]
    estimated_cost: float
    measured_cost: float


def tuned_hybrid_baseline(bundle: DatasetBundle, workload: Workload,
                          backend: str = "engine") -> Baseline:
    """Hybrid inlining with its own recommended physical design."""
    mapping = hybrid_inlining(bundle.tree)
    evaluator = MappingEvaluator(workload, bundle.stats,
                                 bundle.storage_bound)
    evaluated = evaluator.evaluate(mapping)
    assert evaluated is not None, "hybrid baseline must be feasible"
    if backend == "sqlite":
        measured = measure_workload_sqlite(
            evaluated.schema, evaluated.tuning.configuration,
            evaluated.sql_queries, bundle.docs)
    else:
        db = realize(evaluated.schema, evaluated.tuning.configuration,
                     bundle.docs)
        measured = measure_workload(db, evaluated.sql_queries)
    return Baseline(
        schema=evaluated.schema,
        configuration=evaluated.tuning.configuration,
        sql_queries=evaluated.sql_queries,
        estimated_cost=evaluated.total_cost,
        measured_cost=measured,
    )
