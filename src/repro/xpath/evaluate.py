"""Reference evaluator: run XPath queries directly over XML documents.

This evaluator is the ground truth for correctness testing of the whole
shredding pipeline: for any mapping, shredding a document and running the
translated SQL must return the same multiset of values that this
evaluator returns on the original document.
"""

from __future__ import annotations

from ..xmlkit import Document, Element
from .ast import Axis, Predicate, Step, XPathQuery


def _attribute_elements(context: Element, name: str) -> list[Element]:
    """Synthetic leaf elements carrying attribute values."""
    value = context.attributes.get(name)
    if value is None:
        return []
    synthetic = Element(f"@{name}")
    synthetic.add_text(value)
    return [synthetic]


def _step_matches(step: Step, context: Element) -> list[Element]:
    """Elements reachable from ``context`` via one location step."""
    if step.name.startswith("@"):
        name = step.name[1:]
        if step.axis == Axis.CHILD:
            return _attribute_elements(context, name)
        out: list[Element] = []
        for node in context.iter():
            out.extend(_attribute_elements(node, name))
        return out
    if step.axis == Axis.CHILD:
        return context.find_all(step.name)
    return list(context.descendants(step.name))


def _eval_relpath(path: tuple[Step, ...], context: Element) -> list[Element]:
    """All elements reached by a relative path from ``context``."""
    frontier = [context]
    for step in path:
        next_frontier: list[Element] = []
        for node in frontier:
            next_frontier.extend(_step_matches(step, node))
        frontier = next_frontier
    return frontier


def _predicate_holds(predicate: Predicate, context: Element) -> bool:
    targets = _eval_relpath(predicate.path, context)
    if predicate.op is None:
        return bool(targets)
    assert predicate.value is not None
    return any(predicate.op.compare(t.string_value(), predicate.value)
               for t in targets)


def evaluate(query: XPathQuery, doc: Document | Element) -> list[Element]:
    """Return the result elements of ``query`` on ``doc``, in document order.

    If the query has projections, the result is the concatenation of all
    projection matches per context element (grouped by context element,
    as the sorted outer-union SQL translation produces). Otherwise the
    context elements themselves are returned.
    """
    root = doc.root if isinstance(doc, Document) else doc
    # The first step is evaluated against a virtual document node, so a
    # leading child axis tests the root element's own name.
    first = query.steps[0]
    if first.name.startswith("@"):
        # The document node has no attributes; only the descendant axis
        # can reach attribute values from here.
        frontier = (_step_matches(first, root)
                    if first.axis == Axis.DESCENDANT else [])
    elif first.axis == Axis.CHILD:
        frontier = [root] if root.tag == first.name else []
    else:
        frontier = [root] if root.tag == first.name else []
        frontier += [el for el in root.descendants(first.name)]
    if query.predicate is not None and query.predicate_step == 0:
        frontier = [el for el in frontier
                    if _predicate_holds(query.predicate, el)]
    for i, step in enumerate(query.steps[1:], start=1):
        next_frontier: list[Element] = []
        for node in frontier:
            matches = _step_matches(step, node)
            if query.predicate is not None and query.predicate_step == i:
                matches = [el for el in matches
                           if _predicate_holds(query.predicate, el)]
            next_frontier.extend(matches)
        frontier = next_frontier
    if not query.projections:
        return frontier
    results: list[Element] = []
    for context in frontier:
        for path in query.projections:
            results.extend(_eval_relpath(path, context))
    return results


def evaluate_values(query: XPathQuery, doc: Document | Element) -> list[str]:
    """Like :func:`evaluate` but returning string-values (handy in tests)."""
    return [el.string_value() for el in evaluate(query, doc)]
