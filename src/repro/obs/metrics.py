"""Per-component metric registries.

A :class:`MetricRegistry` is a named bag of monotonically increasing
counters — cheap enough to increment on hot paths (``database``,
``advisor``, ``evaluator`` components), cheap to snapshot, and
deterministic to render (counters sorted by name). Registries also
hand out :class:`LatencyHistogram` instances for distributions (the
query service records one observation per served request).
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = ["LatencyHistogram", "MetricRegistry", "NullMetricRegistry",
           "NULL_METRICS"]


def _log_bucket_bounds(lo: float, hi: float, per_decade: int) -> list[float]:
    """Log-spaced upper bounds from ``lo`` to ``hi`` (inclusive)."""
    decades = math.log10(hi / lo)
    n = max(1, round(decades * per_decade))
    return [lo * (hi / lo) ** (i / n) for i in range(n + 1)]


class LatencyHistogram:
    """Fixed log-scale buckets over seconds; thread-safe to observe.

    Buckets span 10 µs .. 100 s with a configurable resolution per
    decade; observations outside the range land in the first/last
    bucket. Percentiles are estimated by linear interpolation inside
    the winning bucket — good to bucket resolution, which is what a
    load report needs (the raw per-request latencies stay available to
    callers that want exact order statistics).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "_max",
                 "_lock")

    def __init__(self, name: str, lo: float = 1e-5, hi: float = 100.0,
                 per_decade: int = 10):
        self.name = name
        self.bounds = _log_bucket_bounds(lo, hi, per_decade)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds > self._max:
                self._max = seconds

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0 < p <= 100) in seconds."""
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = (self.bounds[index] if index < len(self.bounds)
                      else self._max)
                fraction = (rank - seen) / bucket_count
                return min(lo + (hi - lo) * fraction, self._max)
            seen += bucket_count
        return self._max

    def snapshot(self) -> dict[str, float]:
        """Count, mean, max, and the standard latency percentiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self._max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper bound seconds, count) for occupied buckets, in order."""
        out = []
        for index, bucket_count in enumerate(self.counts):
            if bucket_count:
                bound = (self.bounds[index] if index < len(self.bounds)
                         else math.inf)
                out.append((bound, bucket_count))
        return out


class MetricRegistry:
    """Named counters (plus histograms) for one component."""

    __slots__ = ("component", "counters", "histograms")

    def __init__(self, component: str):
        self.component = component
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, LatencyHistogram] = {}

    def incr(self, name: str, delta: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def get(self, name: str) -> float:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LatencyHistogram(name)
        return histogram

    def snapshot(self) -> dict[str, float]:
        """Counters sorted by name (deterministic rendering order);
        histograms are flattened as ``<name>.<stat>`` entries."""
        out = {name: self.counters[name] for name in sorted(self.counters)}
        for name in sorted(self.histograms):
            for stat, value in self.histograms[name].snapshot().items():
                out[f"{name}.{stat}"] = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricRegistry {self.component!r} {self.snapshot()}>"


class _NullHistogram(LatencyHistogram):
    """The disabled histogram: observations vanish."""

    def __init__(self):
        super().__init__("null", per_decade=1)

    def observe(self, seconds: float) -> None:
        pass


_NULL_HISTOGRAM = _NullHistogram()


class NullMetricRegistry(MetricRegistry):
    """The disabled registry: increments vanish."""

    def __init__(self):
        super().__init__("null")

    def incr(self, name: str, delta: float = 1) -> None:
        pass

    def histogram(self, name: str) -> LatencyHistogram:
        return _NULL_HISTOGRAM


NULL_METRICS = NullMetricRegistry()
