"""Fault injection, retry/deadline policy, and checkpoint/resume.

Three pillars that make the design search survivable (see
docs/resilience.md):

* :mod:`~repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` raising classified faults at named sites
  (``REPRO_FAULTS`` / ``--faults``), so every failure path is
  exercisable in tests and CI;
* :mod:`~repro.resilience.policy` — a :class:`RetryPolicy` with
  bounded backoff and per-evaluation deadlines; exhausted candidates
  degrade to *infeasible-by-fault* and the search continues;
* :mod:`~repro.resilience.checkpoint` — a :class:`CheckpointStore`
  snapshotting search state atomically, so a killed search resumes to
  an identical :class:`DesignResult`;
* :mod:`~repro.resilience.breaker` — an error-rate
  :class:`CircuitBreaker` with a seeded probe schedule, used by the
  serving layer to fast-fail when the backend goes bad and to recover
  deterministically.
"""

from .breaker import CLOSED, OPEN, CircuitBreaker
from .checkpoint import CheckpointStore
from .faults import (NULL_PLAN, RETRYABLE_CATEGORIES, FaultPlan, FaultRule,
                     active_fault_plan, classify, install_fault_plan)
from .policy import RetryPolicy, note_suppressed

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "FaultPlan",
    "FaultRule",
    "NULL_PLAN",
    "active_fault_plan",
    "install_fault_plan",
    "classify",
    "RETRYABLE_CATEGORIES",
    "RetryPolicy",
    "note_suppressed",
    "CheckpointStore",
]
