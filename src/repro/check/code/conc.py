"""CONC0xx — concurrency lints.

The serving and search layers hand work to thread pools; the contracts
that keep them correct (every shared counter behind a lock, one SQLite
connection per thread, one global lock order) are enforced here
statically instead of only by the tests that happen to race them:

* **CONC001** — module- or instance-level state written without a lock
  from a function reachable from a ``submit``/``Thread(target=...)``
  site (via the module's intraprocedural call graph). Covers both
  attribute rebinding (``self.count = ...``) and container mutation
  through an attribute (``self.counters[name] = ...`` — the exact
  shape of the ``MetricRegistry.incr`` lost-increment bug). Writes
  through ``threading.local()`` slots are naturally exempt (the target
  is not ``self.attr``), as are writes lexically inside a
  ``with <...lock>:`` block.
* **CONC002** — a ``sqlite3.connect()`` result stored on ``self`` and
  then touched from a submit-reachable method: sqlite3 connections must
  not cross threads; use a per-thread connection
  (see ``repro.backends.sqlite``).
* **CONC003** — a cycle in the cross-module lock-acquisition-order
  graph (``A`` held while taking ``B`` somewhere, ``B`` held while
  taking ``A`` elsewhere): the classic ABBA deadlock, detected from
  nested ``with`` blocks and the calls made under them.
"""

from __future__ import annotations

import ast

from ..findings import Findings
from .callgraph import LockOrderGraph, ModuleCallGraph, lock_name_of
from .walker import SourceModule

__all__ = ["build_lock_order", "check_concurrency", "check_lock_order"]


def _is_self_attribute(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self")


def _write_targets(node: ast.AST) -> list[ast.expr]:
    """The assignment targets of a statement, flattened."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            out.extend(target.elts)
        else:
            out.append(target)
    return out


def _under_lock(module: SourceModule, node: ast.AST) -> bool:
    """Is ``node`` lexically inside a ``with <something lock>`` body?"""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                if lock_name_of(item.context_expr) is not None:
                    return True
    return False


def _global_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _shared_base(target: ast.expr, globals_here: set[str]) -> bool:
    """Is this write target shared state (an instance attribute or a
    module global), including a subscript store through one —
    ``self.counters[name] = ...`` mutates shared state just as surely
    as ``self.count = ...`` does."""
    if isinstance(target, ast.Subscript):
        return _shared_base(target.value, globals_here)
    return (_is_self_attribute(target)
            or (isinstance(target, ast.Name)
                and target.id in globals_here))


def _describe_target(target: ast.expr) -> str:
    if isinstance(target, ast.Attribute):
        return f"self.{target.attr}"
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Subscript):
        return f"{_describe_target(target.value)}[...]"
    return ast.dump(target)


def _connect_call(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "connect" and \
            isinstance(func.value, ast.Name) and func.value.id == "sqlite3":
        return True
    return isinstance(func, ast.Name) and func.id == "connect"


def _connection_attrs(module: SourceModule,
                      graph: ModuleCallGraph) -> dict[str, set[str]]:
    """class name -> attrs assigned from ``sqlite3.connect(...)``."""
    out: dict[str, set[str]] = {}
    for unit in graph.functions.values():
        if unit.class_name is None:
            continue
        for node in ast.walk(unit.node):
            if isinstance(node, ast.Assign) and _connect_call(node.value):
                for target in node.targets:
                    if _is_self_attribute(target):
                        assert isinstance(target, ast.Attribute)
                        out.setdefault(unit.class_name,
                                       set()).add(target.attr)
    return out


def check_concurrency(module: SourceModule,
                      graph: ModuleCallGraph | None = None) -> Findings:
    """CONC001 + CONC002 over one module."""
    findings = Findings()
    graph = graph if graph is not None else ModuleCallGraph(module)
    reachable = graph.reachable_from_submit()
    if not reachable:
        return findings
    conn_attrs = _connection_attrs(module, graph)

    for qualname in sorted(reachable):
        unit = graph.functions[qualname]
        submit_site = reachable[qualname]
        globals_here = _global_names(unit.node)
        class_conns = conn_attrs.get(unit.class_name or "", set())
        flagged_conns: set[str] = set()
        for node in graph._own_statements(unit):
            # CONC001 — unprotected shared-state writes
            for target in _write_targets(node):
                if _shared_base(target, globals_here) \
                        and not _under_lock(module, node):
                    findings.add(
                        "CONC001",
                        f"{_describe_target(target)} written in "
                        f"{qualname}() without holding a lock; the "
                        f"function is reachable from the submit site at "
                        f"{submit_site}",
                        module.location(node))
            # CONC002 — cross-thread sqlite3 connection use
            if isinstance(node, ast.Attribute) and \
                    _is_self_attribute(node) and \
                    node.attr in class_conns and \
                    node.attr not in flagged_conns and \
                    isinstance(node.ctx, ast.Load):
                flagged_conns.add(node.attr)
                findings.add(
                    "CONC002",
                    f"sqlite3 connection self.{node.attr} (created in "
                    f"another thread) used in {qualname}(), which runs "
                    f"on a pool thread (submitted at {submit_site}); "
                    f"sqlite3 connections must stay on their creating "
                    f"thread — open one per thread instead",
                    module.location(node))
    return findings


def build_lock_order(modules: list[SourceModule]) -> LockOrderGraph:
    """The merged cross-module lock-acquisition-order graph."""
    graph = LockOrderGraph()
    for module in modules:
        graph.observe(ModuleCallGraph(module))
    return graph


def check_lock_order(modules: list[SourceModule]) -> Findings:
    """CONC003 — report every cycle in the lock-order graph."""
    findings = Findings()
    graph = build_lock_order(modules)
    for cycle in graph.cycles():
        path = " -> ".join(cycle + [cycle[0]])
        location = graph.site_for(cycle[0], cycle[1 % len(cycle)])
        findings.add(
            "CONC003",
            f"lock acquisition order cycle: {path}; two call paths "
            f"acquire these locks in opposite orders (ABBA deadlock)",
            location)
    return findings
