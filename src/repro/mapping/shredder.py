"""Shred XML documents into relational rows under a mapping.

Every element receives a globally unique integer ID in document order;
annotated elements become rows (ID, PID, columns...), inlined leaves
become column values in their owner's row, repetition-split leaves fill
the ``name_1 .. name_k`` columns with the overflow going to the leaf's
own table, and union-distributed owners are routed to the partition
whose condition matches the instance's optional/choice signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ShreddingError
from ..xmlkit import Document, Element
from ..xsd import NodeKind, SchemaNode, SchemaTree
from .relschema import (BranchCondition, MappedSchema, PartitionSpec,
                        PresenceCondition, TableGroup)


@dataclass
class _DispatchEntry:
    """How to handle one child tag inside a TAG node's content region."""

    node: SchemaNode
    optional_ids: frozenset[int]
    choice_branch: tuple[int, int] | None  # (choice_id, branch_index)
    kind: str  # 'annotated' | 'leaf' | 'split-leaf' | 'inline-complex'
    column: str | None = None
    split_columns: tuple[str, ...] = ()
    overflow_annotation: str | None = None
    overflow_value_column: str | None = None
    # (attribute name, column) pairs for inlined leaf children whose
    # attributes map into the owner's row.
    attr_columns: tuple[tuple[str, str], ...] = ()


@dataclass
class _RowContext:
    """State accumulated while filling one owner row."""

    element_id: int
    values: dict[str, object] = field(default_factory=dict)
    present_optionals: set[int] = field(default_factory=set)
    choices: dict[int, int] = field(default_factory=dict)
    split_counts: dict[int, int] = field(default_factory=dict)


class Shredder:
    """Shreds documents according to one :class:`MappedSchema`."""

    def __init__(self, schema: MappedSchema):
        self.schema = schema
        self.tree: SchemaTree = schema.tree
        self._dispatch_cache: dict[int, dict[str, _DispatchEntry]] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    def shred(self, docs) -> dict[str, list[tuple]]:
        """Shred one document or a list; returns rows per table name."""
        if isinstance(docs, (Document, Element)):
            docs = [docs]
        rows: dict[str, list[tuple]] = {name: []
                                        for name in self.schema.table_names}
        for doc in docs:
            root = doc.root if isinstance(doc, Document) else doc
            schema_root = self.tree.root
            if root.tag != schema_root.name:
                raise ShreddingError(
                    f"document root <{root.tag}> does not match schema "
                    f"root <{schema_root.name}>")
            self._shred_annotated(root, schema_root, parent_id=None,
                                  rows=rows)
        return rows

    def reset_ids(self) -> None:
        self._next_id = 1

    # ------------------------------------------------------------------
    def _new_id(self) -> int:
        element_id = self._next_id
        self._next_id += 1
        return element_id

    def _shred_annotated(self, element: Element, node: SchemaNode,
                         parent_id: int | None,
                         rows: dict[str, list[tuple]]) -> None:
        group = self._group_of(node)
        ctx = _RowContext(element_id=self._new_id())
        ctx.values["ID"] = ctx.element_id
        ctx.values["PID"] = parent_id
        self._apply_attributes(element, node, ctx)
        if self.tree.is_leaf_element(node):
            storage = self.schema.storage_of(node.node_id)
            assert storage.value_column is not None
            ctx.values[storage.value_column] = element.text
        else:
            self._fill_region(element, node, ctx, rows)
        partition = self._route(group, ctx, node)
        row = tuple(ctx.values.get(name) for name in partition.column_names)
        rows[partition.table_name].append(row)

    def _group_of(self, node: SchemaNode) -> TableGroup:
        annotation = self.schema.mapping.annotation_of(node.node_id)
        if annotation is None:
            raise ShreddingError(
                f"internal error: node #{node.node_id} is not annotated")
        return self.schema.group(annotation)

    # ------------------------------------------------------------------
    def _fill_region(self, element: Element, node: SchemaNode,
                     ctx: _RowContext, rows: dict[str, list[tuple]]) -> None:
        dispatch = self._dispatch_for(node)
        for child in element.children:
            entry = dispatch.get(child.tag)
            if entry is None:
                raise ShreddingError(
                    f"unexpected element <{child.tag}> under "
                    f"<{element.tag}> for this mapping")
            ctx.present_optionals |= entry.optional_ids
            if entry.choice_branch is not None:
                choice_id, branch = entry.choice_branch
                ctx.choices[choice_id] = branch
            if entry.kind == "annotated":
                self._shred_annotated(child, entry.node, ctx.element_id, rows)
            elif entry.kind == "leaf":
                ctx.values[entry.column] = child.text
                for attr_name, column in entry.attr_columns:
                    if attr_name in child.attributes:
                        ctx.values[column] = child.attributes[attr_name]
            elif entry.kind == "split-leaf":
                count = ctx.split_counts.get(entry.node.node_id, 0) + 1
                ctx.split_counts[entry.node.node_id] = count
                if count <= len(entry.split_columns):
                    ctx.values[entry.split_columns[count - 1]] = child.text
                else:
                    overflow_group = self.schema.group(
                        entry.overflow_annotation)
                    partition = overflow_group.partitions[0]
                    values = {"ID": self._new_id(), "PID": ctx.element_id,
                              entry.overflow_value_column: child.text}
                    rows[partition.table_name].append(tuple(
                        values.get(name) for name in partition.column_names))
            elif entry.kind == "inline-complex":
                self._apply_attributes(child, entry.node, ctx)
                self._fill_region(child, entry.node, ctx, rows)
        # Values are stored as text; column typing happens at load time.

    def _apply_attributes(self, element: Element, node: SchemaNode,
                          ctx: _RowContext) -> None:
        """Write the element's attribute values into the current row."""
        for attr in self.tree.attributes_of(node):
            column = self.schema.column_of_leaf.get(attr.node_id)
            if column is None:
                continue
            value = element.attributes.get(attr.name)
            if value is not None:
                ctx.values[column] = value

    # ------------------------------------------------------------------
    def _dispatch_for(self, node: SchemaNode) -> dict[str, _DispatchEntry]:
        cached = self._dispatch_cache.get(node.node_id)
        if cached is not None:
            return cached
        dispatch: dict[str, _DispatchEntry] = {}
        annotation_map = self.schema.mapping.annotation_map
        split_map = self.schema.mapping.split_map
        tree = self.tree

        def walk(current: SchemaNode, optional_ids: frozenset[int],
                 choice_branch) -> None:
            for child in tree.children(current):
                if child.kind == NodeKind.SIMPLE:
                    continue
                if child.kind == NodeKind.TAG:
                    self._add_entry(dispatch, child, optional_ids,
                                    choice_branch, annotation_map)
                elif child.kind == NodeKind.OPTION:
                    walk(child, optional_ids | {child.node_id}, choice_branch)
                elif child.kind == NodeKind.CHOICE:
                    for index, branch in enumerate(tree.children(child)):
                        if branch.kind == NodeKind.TAG:
                            self._add_entry(dispatch, branch, optional_ids,
                                            (child.node_id, index),
                                            annotation_map)
                        else:
                            walk_branch(branch, optional_ids,
                                        (child.node_id, index))
                elif child.kind == NodeKind.SEQUENCE:
                    walk(child, optional_ids, choice_branch)
                elif child.kind == NodeKind.REPETITION:
                    leaf = tree.children(child)[0]
                    split = split_map.get(child.node_id)
                    if split is not None and tree.is_leaf_element(leaf):
                        storage = self.schema.storage_of(leaf.node_id)
                        overflow = self.schema.group(storage.own_annotation)
                        dispatch[leaf.name] = _DispatchEntry(
                            node=leaf, optional_ids=optional_ids,
                            choice_branch=choice_branch, kind="split-leaf",
                            split_columns=storage.split_columns,
                            overflow_annotation=storage.own_annotation,
                            overflow_value_column=storage.value_column)
                    else:
                        # The repeated element is annotated.
                        self._add_entry(dispatch, leaf, optional_ids,
                                        choice_branch, annotation_map)

        def walk_branch(current: SchemaNode, optional_ids, choice_branch):
            walk(current, optional_ids, choice_branch)

        walk(node, frozenset(), None)
        self._dispatch_cache[node.node_id] = dispatch
        return dispatch

    def _add_entry(self, dispatch, child: SchemaNode,
                   optional_ids: frozenset[int], choice_branch,
                   annotation_map: dict[int, str]) -> None:
        tree = self.tree
        attr_columns: tuple[tuple[str, str], ...] = ()
        if child.node_id in annotation_map:
            kind, column = "annotated", None
        elif tree.is_leaf_element(child):
            kind = "leaf"
            column = self.schema.column_of_leaf.get(child.node_id)
            if column is None:
                raise ShreddingError(
                    f"leaf #{child.node_id} <{child.name}> has no column")
            attr_columns = tuple(
                (attr.name, self.schema.column_of_leaf[attr.node_id])
                for attr in tree.attributes_of(child)
                if attr.node_id in self.schema.column_of_leaf)
        else:
            kind, column = "inline-complex", None
        if child.name in dispatch:
            raise ShreddingError(
                f"ambiguous element name <{child.name}> in one content "
                f"region; not supported by the shredder")
        dispatch[child.name] = _DispatchEntry(
            node=child, optional_ids=optional_ids,
            choice_branch=choice_branch, kind=kind, column=column,
            attr_columns=attr_columns)

    # ------------------------------------------------------------------
    def _route(self, group: TableGroup, ctx: _RowContext,
               node: SchemaNode) -> PartitionSpec:
        if len(group.partitions) == 1:
            return group.partitions[0]
        for partition in group.partitions:
            if all(self._condition_holds(c, ctx)
                   for c in partition.conditions):
                return partition
        raise ShreddingError(
            f"no partition of {group.annotation!r} matches instance "
            f"#{ctx.element_id} of <{node.name}>")

    @staticmethod
    def _condition_holds(condition, ctx: _RowContext) -> bool:
        if isinstance(condition, BranchCondition):
            return ctx.choices.get(condition.choice_id) == condition.branch_index
        if isinstance(condition, PresenceCondition):
            overlap = bool(ctx.present_optionals & condition.optional_ids)
            return overlap == condition.present
        raise ShreddingError(f"unknown condition {condition!r}")


def shred_typed_rows(schema: MappedSchema, docs) -> dict[str, list[tuple]]:
    """Shred documents into *typed* rows per table name.

    Shredded values are text; this applies each column's SQL-type
    coercion, producing the exact rows any execution backend (the
    in-memory engine, SQLite, ...) should load. Sharing this step is
    what makes cross-backend runs byte-identical at the data layer.
    """
    engine_tables = {t.name: t for t in schema.to_engine_tables()}
    rows_by_table = Shredder(schema).shred(docs)
    typed_by_table: dict[str, list[tuple]] = {}
    for table_name, rows in rows_by_table.items():
        coercers = [c.sql_type.coerce
                    for c in engine_tables[table_name].columns]
        typed_by_table[table_name] = [
            tuple(coerce(v) for coerce, v in zip(coercers, row))
            for row in rows]
    return typed_by_table


def load_documents(db, schema: MappedSchema, docs,
                   analyze: bool = True) -> None:
    """Shred documents and load (typed) rows into an engine database.

    Tables are created from the mapped schema if absent.
    """
    existing = set(db.catalog.tables)
    for table in schema.to_engine_tables():
        if table.name not in existing:
            db.register_table(table)
    for table_name, typed in shred_typed_rows(schema, docs).items():
        db.insert_rows(table_name, typed)
    if analyze:
        db.analyze()
        db.build_primary_key_indexes()
