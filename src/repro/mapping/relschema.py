"""The relational schema derived from a mapping, with resolution metadata.

The mapper (:mod:`repro.mapping.mapper`) turns a :class:`Mapping` into a
:class:`MappedSchema`: one :class:`TableGroup` per annotation, each with
its full column set and one or more horizontal :class:`PartitionSpec`
(more than one when union distributions apply). Alongside the engine
tables, the mapped schema records *where every schema-tree node's data
lives*, which the translator, the shredder, and the statistics deriver
all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import Column, SQLType, Table
from ..errors import MappingError
from .model import Mapping

ID_COLUMN = "ID"
PID_COLUMN = "PID"


@dataclass(frozen=True)
class BranchCondition:
    """Partition condition: choice ``choice_id`` took branch ``branch_index``."""

    choice_id: int
    branch_index: int


@dataclass(frozen=True)
class PresenceCondition:
    """Partition condition on optional elements.

    ``present=True``: at least one of ``optional_ids`` is present;
    ``present=False``: none is.
    """

    optional_ids: frozenset[int]
    present: bool


PartitionCondition = BranchCondition | PresenceCondition


@dataclass
class ColumnSpec:
    """One relational column and its schema-tree source."""

    name: str
    leaf_id: int | None  # source leaf TAG node; None for ID/PID
    sql_type: SQLType
    nullable: bool
    occurrence: int | None = None  # 1-based index for repetition-split cols

    def to_engine_column(self) -> Column:
        return Column(self.name, self.sql_type, nullable=self.nullable)


@dataclass
class PartitionSpec:
    """One horizontal partition (physical table) of a table group."""

    table_name: str
    conditions: tuple[PartitionCondition, ...]
    column_names: tuple[str, ...]

    @property
    def is_default(self) -> bool:
        return not self.conditions


@dataclass
class LeafStorage:
    """Where a leaf element's values live under the mapping.

    A leaf can have inline storage (a column, or repetition-split
    columns, in the owning region's table group) and/or its own table
    (an outlined leaf, or the overflow table of a repetition split).
    """

    leaf_id: int
    inline_annotation: str | None = None  # group holding inline column(s)
    column: str | None = None             # plain inlined column name
    split_columns: tuple[str, ...] = ()   # repetition-split inline columns
    own_annotation: str | None = None     # leaf's own table
    value_column: str | None = None       # value column in its own table

    @property
    def is_inlined(self) -> bool:
        return self.column is not None

    @property
    def is_split(self) -> bool:
        return bool(self.split_columns)

    @property
    def has_own_table(self) -> bool:
        return self.own_annotation is not None


@dataclass
class TableGroup:
    """All tables deriving from one annotation."""

    annotation: str
    owner_ids: tuple[int, ...]
    columns: list[ColumnSpec]
    partitions: list[PartitionSpec]
    parent_annotation: str | None

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise MappingError(
            f"table group {self.annotation!r} has no column {name!r}")

    def partitions_with_column(self, name: str) -> list[PartitionSpec]:
        return [p for p in self.partitions if name in p.column_names]

    @property
    def table_names(self) -> list[str]:
        return [p.table_name for p in self.partitions]


class MappedSchema:
    """A mapping's derived relational schema plus resolution metadata."""

    def __init__(self, mapping: Mapping, groups: dict[str, TableGroup],
                 leaf_storage: dict[int, LeafStorage],
                 owner_of: dict[int, int],
                 column_of_leaf: dict[int, str]):
        self.mapping = mapping
        self.tree = mapping.tree
        self.groups = groups
        self.leaf_storage = leaf_storage
        self.owner_of = owner_of            # TAG node id -> annotated node id
        self.column_of_leaf = column_of_leaf  # leaf id -> inline column name
        self._partition_by_name = {
            p.table_name: (g, p)
            for g in groups.values() for p in g.partitions}

    # ------------------------------------------------------------------
    def group_of_node(self, node_id: int) -> TableGroup:
        """Table group owning the given TAG node's region."""
        owner = self.owner_of.get(node_id)
        if owner is None:
            raise MappingError(f"node #{node_id} has no owner")
        annotation = self.mapping.annotation_of(owner)
        assert annotation is not None
        return self.groups[annotation]

    def group(self, annotation: str) -> TableGroup:
        try:
            return self.groups[annotation]
        except KeyError:
            raise MappingError(f"no table group {annotation!r}") from None

    def partition(self, table_name: str) -> tuple[TableGroup, PartitionSpec]:
        try:
            return self._partition_by_name[table_name]
        except KeyError:
            raise MappingError(f"no partition table {table_name!r}") from None

    def storage_of(self, leaf_id: int) -> LeafStorage:
        try:
            return self.leaf_storage[leaf_id]
        except KeyError:
            raise MappingError(
                f"leaf node #{leaf_id} has no storage entry") from None

    @property
    def table_names(self) -> list[str]:
        return [name for g in self.groups.values() for name in g.table_names]

    # ------------------------------------------------------------------
    def to_engine_tables(self) -> list[Table]:
        """Engine table objects (one per partition), data-free."""
        tables: list[Table] = []
        for group in self.groups.values():
            specs_by_name = {c.name: c for c in group.columns}
            for partition in group.partitions:
                columns = [specs_by_name[n].to_engine_column()
                           for n in partition.column_names]
                tables.append(Table(partition.table_name, columns,
                                    primary_key=ID_COLUMN))
        return tables

    def describe(self) -> str:
        """Human-readable schema listing (used by examples)."""
        lines: list[str] = []
        for group in sorted(self.groups.values(), key=lambda g: g.annotation):
            for partition in group.partitions:
                lines.append(f"{partition.table_name}"
                             f"({', '.join(partition.column_names)})")
        return "\n".join(lines)

    def signature(self) -> tuple:
        """Identity of the *relational* schema (for subsumption tests)."""
        return tuple(sorted(
            (p.table_name, tuple(sorted(p.column_names)))
            for g in self.groups.values() for p in g.partitions))
