"""XPath subset: AST, parser, and reference evaluator."""

from .ast import Axis, CompareOp, Predicate, Step, XPathQuery
from .evaluate import evaluate, evaluate_values
from .parser import parse_xpath

__all__ = [
    "Axis",
    "CompareOp",
    "Predicate",
    "Step",
    "XPathQuery",
    "parse_xpath",
    "evaluate",
    "evaluate_values",
]
