"""Static semantic analysis for SQL ASTs, mappings, and plans.

Three analyzer passes over the artifacts the design search produces:

* :func:`analyze_query` — SQL semantic analysis against a catalog,
* :func:`check_mapping` / :func:`check_schema` / :func:`check_transform`
  — mapping well-formedness and losslessness invariants,
* :func:`check_plan` — optimizer-output sanitation,

all reporting through the shared :class:`Findings` engine with stable
diagnostic codes (see docs/static-analysis.md). The passes double as
debug-mode assertions inside the engine and the search (gated by
``REPRO_CHECK``, on by default under pytest) and as the ``repro check``
CLI via :func:`lint_bundle`.

A fourth family lints the repro *source code* itself —
:mod:`repro.check.code` (DET/CONC/RES diagnostics via
:func:`lint_source_tree`, driven by ``repro check --code``).
"""

from .bundle import BundleReport, lint_bundle
from .code import CodeReport, lint_source_tree
from .findings import CODES, Finding, Findings, Severity
from .mapping_checker import (check_mapping, check_schema, check_transform,
                              value_coverage)
from .plan_checker import check_plan
from .runtime import checks_enabled, enforce, override_checks, report
from .sql_analyzer import analyze_query

__all__ = [
    "BundleReport",
    "CODES",
    "CodeReport",
    "Finding",
    "Findings",
    "Severity",
    "analyze_query",
    "lint_source_tree",
    "check_mapping",
    "check_plan",
    "check_schema",
    "check_transform",
    "checks_enabled",
    "enforce",
    "lint_bundle",
    "override_checks",
    "report",
    "value_coverage",
]
