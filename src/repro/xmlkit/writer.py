"""Serialize xmlkit documents back to XML text.

The writer escapes the five predefined entities so that
``parse(serialize(doc))`` round-trips for any document the parser can
produce (verified by property-based tests).
"""

from __future__ import annotations

from io import StringIO

from .doc import Document, Element

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for ch, repl in _TEXT_ESCAPES.items():
        if ch in value:
            value = value.replace(ch, repl)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for ch, repl in _ATTR_ESCAPES.items():
        if ch in value:
            value = value.replace(ch, repl)
    return value


def serialize_element(element: Element, out: StringIO, indent: int | None,
                      depth: int = 0) -> None:
    """Write one element (recursively) to ``out``.

    ``indent`` of ``None`` means compact output that preserves mixed
    content exactly; an integer pretty-prints with that many spaces per
    level (only safe when no element has mixed content worth preserving).
    """
    pad = "" if indent is None else "\n" + " " * (indent * depth)
    if indent is not None and depth > 0:
        out.write(pad)
    out.write(f"<{element.tag}")
    for name, value in element.attributes.items():
        out.write(f' {name}="{escape_attribute(value)}"')
    texts = element.text_segments
    children = element.children
    if not children and not any(texts):
        out.write("/>")
        return
    out.write(">")
    for i, child in enumerate(children):
        if texts[i]:
            out.write(escape_text(texts[i]))
        serialize_element(child, out, indent, depth + 1)
    if texts[len(children)]:
        out.write(escape_text(texts[len(children)]))
    elif indent is not None and children:
        out.write("\n" + " " * (indent * depth))
    out.write(f"</{element.tag}>")


def serialize(doc: Document | Element, indent: int | None = None,
              declaration: bool = True) -> str:
    """Serialize a document or element subtree to XML text."""
    out = StringIO()
    if isinstance(doc, Document):
        if declaration:
            out.write(
                f'<?xml version="{doc.version}" encoding="{doc.encoding}"?>')
            if indent is not None:
                out.write("\n")
        root = doc.root
    else:
        root = doc
    serialize_element(root, out, indent)
    return out.getvalue()
