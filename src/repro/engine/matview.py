"""Materialized join views.

The tuning advisor considers two-table join views of the shape the
translated queries use: ``child JOIN parent ON child.fk = parent.ID``.
A view is represented as a :class:`~repro.engine.schema.Table` carrying a
:class:`~repro.engine.schema.JoinViewDefinition`; this module builds the
view's rows from data and derives its statistics without data (what-if
mode).
"""

from __future__ import annotations

from ..errors import CatalogError
from .schema import Column, JoinViewDefinition, Table
from .statistics import StatisticsCatalog, TableStats


def make_view_table(name: str, definition: JoinViewDefinition,
                    parent: Table, child: Table) -> Table:
    """Create the (not yet populated) view table object."""
    columns = []
    for view_col, (source_table, source_col) in definition.columns:
        if source_table == parent.name:
            source = parent.column(source_col)
        elif source_table == child.name:
            source = child.column(source_col)
        else:
            raise CatalogError(
                f"view {name!r} references table {source_table!r} outside "
                f"its definition")
        columns.append(Column(view_col, source.sql_type,
                              nullable=source.nullable,
                              avg_width=source.avg_width))
    view = Table(name, columns, primary_key=None, view_def=definition)
    return view


def populate_view(view: Table, parent: Table, child: Table) -> None:
    """Materialize the join rows into the view table."""
    definition = view.view_def
    assert definition is not None
    if parent.rows is None or child.rows is None:
        raise CatalogError(
            f"cannot populate view {view.name!r}: sources not materialized")
    parent_by_id: dict[object, tuple] = {}
    id_pos = parent.column_position(parent.primary_key or "ID")
    for row in parent.rows:
        parent_by_id[row[id_pos]] = row
    fk_pos = child.column_position(definition.child_fk_column)
    extractors = []
    for _, (source_table, source_col) in definition.columns:
        if source_table == parent.name:
            pos = parent.column_position(source_col)
            extractors.append(("p", pos))
        else:
            pos = child.column_position(source_col)
            extractors.append(("c", pos))
    rows = []
    for child_row in child.rows:
        parent_row = parent_by_id.get(child_row[fk_pos])
        if parent_row is None:
            continue
        rows.append(tuple(
            parent_row[pos] if side == "p" else child_row[pos]
            for side, pos in extractors))
    view.set_rows(rows)


def derive_view_stats(view: Table, definition: JoinViewDefinition,
                      stats: StatisticsCatalog) -> TableStats:
    """Estimate view statistics from the source tables' statistics.

    Each child row joins exactly one parent (FK semantics), so the view
    has the child's cardinality; parent-sourced columns keep their value
    distribution but are re-scaled to the child row count.
    """
    child_stats = stats.table(definition.child_table)
    child_rows = child_stats.row_count if child_stats else 0
    view_stats = TableStats(row_count=child_rows)
    for view_col, (source_table, source_col) in definition.columns:
        source = stats.column(source_table, source_col)
        if source is None:
            continue
        view_stats.columns[view_col] = source.scaled(child_rows)
    view.row_count_estimate = child_rows
    return view_stats
