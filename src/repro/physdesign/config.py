"""Physical design configurations.

A configuration is a set of (hypothetical or materialized) indexes and
join views, with size accounting against the storage bound of the
paper's problem definition (Definition 1: data + physical design
structures must fit in ``S``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import Database, Index, JoinViewDefinition, Table
from ..engine.matview import derive_view_stats, make_view_table


@dataclass
class ViewCandidate:
    """A join-view candidate with its stats-only table object."""

    name: str
    definition: JoinViewDefinition
    table: Table

    def size_bytes(self) -> int:
        return self.table.size_bytes


@dataclass
class Configuration:
    """A set of physical design structures."""

    indexes: list[Index] = field(default_factory=list)
    views: list[ViewCandidate] = field(default_factory=list)

    def size_bytes(self, db: Database) -> int:
        total = 0
        for index in self.indexes:
            table = db.catalog.table(index.table_name)
            total += index.size_bytes(table)
        for view in self.views:
            total += view.size_bytes()
        return total

    def extended(self, candidate) -> "Configuration":
        """A new configuration with one more structure."""
        if isinstance(candidate, Index):
            return Configuration(self.indexes + [candidate], list(self.views))
        return Configuration(list(self.indexes), self.views + [candidate])

    def object_names(self) -> frozenset[str]:
        return frozenset([ix.name for ix in self.indexes]
                         + [v.name for v in self.views])

    def extra_tables(self) -> list[Table]:
        return [v.table for v in self.views]

    def __len__(self) -> int:
        return len(self.indexes) + len(self.views)

    def describe(self) -> str:
        """Human-readable summary used by examples and reports."""
        lines = []
        for index in self.indexes:
            inc = (f" INCLUDE ({', '.join(index.included_columns)})"
                   if index.included_columns else "")
            lines.append(f"INDEX {index.name} ON {index.table_name}"
                         f"({', '.join(index.key_columns)}){inc}")
        for view in self.views:
            definition = view.definition
            lines.append(
                f"VIEW {view.name} = {definition.parent_table} JOIN "
                f"{definition.child_table} ON {definition.child_fk_column}")
        return "\n".join(lines) if lines else "(no physical structures)"


def make_view_candidate(name: str, definition: JoinViewDefinition,
                        db: Database) -> ViewCandidate:
    """Build the stats-only view table for what-if costing."""
    parent = db.catalog.table(definition.parent_table)
    child = db.catalog.table(definition.child_table)
    table = make_view_table(name, definition, parent, child)
    stats = derive_view_stats(table, definition, db.stats)
    # Register stats so the optimizer can estimate selectivities on it.
    db.stats.set_table(name, stats)
    return ViewCandidate(name=name, definition=definition, table=table)
