"""LRU cache of translated query plans for the query service.

XPath→SQL translation is pure — its output depends only on the mapped
schema and the query text — so a long-lived service should pay it once
per distinct query, not once per request. Entries are keyed the same
way the advisor's what-if cache and the persistent evaluation cache
digest their problems: a SHA-1 over a canonical serialization of every
input that can change the output. Here that is

* the **mapping digest** (:func:`repro.search.mapping_digest`) of the
  schema the translator runs against, and
* the **canonical query text** — ``str(parse_xpath(text))``, so
  spelling variants of the same query share one entry.

The cache is thread-safe (the service's pool workers hit it
concurrently) and strictly LRU: ``capacity`` bounds the entry count and
the least-recently-*used* entry is evicted, with hits, misses, and
evictions counted on a ``repro.obs`` metric registry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..mapping import MappedSchema
from ..obs import NullTracer, Tracer, get_tracer
from ..resilience import active_fault_plan
from ..search import mapping_digest
from ..sqlast import Query
from ..translate import Translator
from ..xpath import XPathQuery, parse_xpath

__all__ = ["CachedPlan", "PlanCache"]


@dataclass(frozen=True)
class CachedPlan:
    """One translated plan: the parsed query, its SQL AST, and the key."""

    key: str
    xpath: XPathQuery
    sql: Query


class PlanCache:
    """Thread-safe LRU of :class:`CachedPlan` entries for one schema."""

    def __init__(self, schema: MappedSchema, capacity: int = 128,
                 tracer: Tracer | NullTracer | None = None):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.schema = schema
        self.capacity = capacity
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("serve.plan_cache")
        self._translator = Translator(schema)
        self._schema_digest = mapping_digest(schema.mapping)
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def key_for(self, query: XPathQuery) -> str:
        """Digest of (mapping digest, canonical query text)."""
        canonical = f"{self._schema_digest}|{query}"
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]

    def get_or_translate(self, query: XPathQuery | str) -> CachedPlan:
        """The cached plan for ``query``, translating on a miss.

        Translation runs outside the lock — it is pure and can safely
        race; the first finisher wins the slot and a duplicate
        translation is dropped (counted as a miss either way).
        """
        if isinstance(query, str):
            query = parse_xpath(query)
        key = self.key_for(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._metrics.incr("hits")
                return entry
            self.misses += 1
            self._metrics.incr("misses")
        with self.tracer.span("serve.translate", key=key):
            active_fault_plan().maybe_raise("serve.translate")
            sql = self._translator.translate(query)
        entry = CachedPlan(key=key, xpath=query, sql=sql)
        with self._lock:
            racer = self._entries.get(key)
            if racer is not None:
                self._entries.move_to_end(key)
                return racer
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._metrics.incr("evictions")
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, query: XPathQuery | str) -> bool:
        if isinstance(query, str):
            query = parse_xpath(query)
        with self._lock:
            return self.key_for(query) in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
