"""The paper's Greedy search algorithm (Fig. 3).

Pipeline:

1. **Candidate selection** (Section 4.5) splits workload-relevant
   transformations into split-type ``C2`` and merge-type ``C1``;
   subsumed transformations are never considered.
2. The initial mapping ``M0`` applies every split candidate to the base
   (hybrid-inlining) mapping.
3. **Candidate merging** (Section 4.7) replaces pairs of implicit-union
   candidates with merged ones before building ``M0``.
4. The greedy loop repeatedly applies the merge-type candidate with the
   lowest resulting cost — costing each enumerated mapping through the
   physical design tool, with **cost derivation** (Section 4.8) reusing
   per-query costs where the rules allow — until no candidate improves
   the workload. The winning mapping of each round is re-costed without
   derivation, as the paper prescribes.

Ablation switches (used by the Fig. 7–9 experiments):
``use_selection``, ``merging`` ('greedy' | 'none' | 'exhaustive'),
``use_cost_derivation``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from ..errors import CheckpointError, MappingError
from ..mapping import (CollectedStats, Mapping, RepetitionMerge,
                       Transformation, UnionDistribute, UnionFactorize,
                       enumerate_transformations, hybrid_inlining)
from ..obs import NullTracer, Tracer, get_tracer
from ..resilience import CheckpointStore, note_suppressed
from ..workload import Workload
from ..xsd import SchemaTree
from .cache import EvaluationCache, problem_digest
from .candidate_merging import CandidateMerger
from .candidate_selection import CandidateSelector, CandidateSet, apply_splits
from .cost_derivation import CostDerivation
from .evaluator import EvaluatedMapping, MappingEvaluator, mapping_digest
from .result import DesignResult, SearchCounters, Stopwatch


def _counters_dict(counters: SearchCounters) -> dict:
    return {f.name: getattr(counters, f.name)
            for f in dataclasses.fields(counters)}


class GreedySearch:
    """The paper's workload-driven joint logical+physical design search."""

    def __init__(self, tree: SchemaTree, workload: Workload,
                 collected: CollectedStats,
                 storage_bound: int | None = None,
                 base_mapping: Mapping | None = None,
                 use_selection: bool = True,
                 include_subsumed: bool = False,
                 merging: str = "greedy",
                 use_cost_derivation: bool = True,
                 cmax: int = 5, coverage: float = 0.80,
                 max_rounds: int = 25,
                 tracer: Tracer | NullTracer | None = None,
                 jobs: int | None = None,
                 cache: EvaluationCache | None = None,
                 checkpoint: CheckpointStore | str | Path | None = None,
                 checkpoint_every: int = 1,
                 resume: bool = False):
        if merging not in ("greedy", "none", "exhaustive"):
            raise ValueError(f"unknown merging mode {merging!r}")
        self.tree = tree
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.base_mapping = base_mapping or hybrid_inlining(tree)
        self.use_selection = use_selection
        self.include_subsumed = include_subsumed
        self.merging = merging
        self.derivation = CostDerivation(enabled=use_cost_derivation)
        self.cmax = cmax
        self.coverage = coverage
        self.max_rounds = max_rounds
        self.tracer = tracer if tracer is not None else get_tracer()
        self.jobs = jobs
        self.cache = cache
        if isinstance(checkpoint, (str, Path)):
            checkpoint = CheckpointStore(checkpoint, tracer=self.tracer)
        self.checkpoint = checkpoint
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.resume = resume
        self.counters = SearchCounters()

    # ------------------------------------------------------------------
    def run(self) -> DesignResult:
        with Stopwatch(self.counters):
            with self.tracer.span("greedy",
                                  workload=self.workload.name,
                                  queries=len(self.workload)) as span:
                result = self._run(span)
        if self.tracer.enabled:
            span.set("rounds", result.rounds)
            span.set("estimated_cost", result.estimated_cost)
            result.trace = span
        return result

    def _run(self, trace) -> DesignResult:
        evaluator = MappingEvaluator(self.workload, self.collected,
                                     self.storage_bound,
                                     counters=self.counters,
                                     tracer=self.tracer,
                                     jobs=self.jobs,
                                     cache=self.cache)
        try:
            return self._run_with(evaluator)
        finally:
            evaluator.close()

    def _run_with(self, evaluator: MappingEvaluator) -> DesignResult:
        resumed = self._restore(evaluator)
        if resumed is not None:
            rounds = resumed["rounds"]
            current = resumed["current"]
            base_eval = resumed["base_eval"]
            pool: list[Transformation] = resumed["pool"]
            rejected_here: list[Transformation] = resumed["rejected_here"]
            applied_log = resumed["applied_log"]
            exact_rescue_used = resumed["exact_rescue_used"]
        else:
            with self.tracer.span("select_candidates") as span:
                candidates = self._select_candidates()
                span.set("splits", len(candidates.splits))
                span.set("merges", len(candidates.merges))
                span.set("implicit_unions", len(candidates.implicit_unions))
            with self.tracer.span("merge_candidates",
                                  mode=self.merging) as span:
                splits = self._merge_split_candidates(candidates)
                span.set("split_pool", len(splits))
            m0, applied_splits = apply_splits(self.base_mapping, splits)
            with self.tracer.span("evaluate_base"):
                base_eval = evaluator.evaluate(self.base_mapping)
            with self.tracer.span("evaluate_m0",
                                  splits_applied=len(applied_splits)):
                current = evaluator.evaluate(m0)
            if current is None:
                # Fall back to the unsplit base mapping.
                current = base_eval
                applied_splits = []
            assert current is not None

            pool = list(candidates.merges)
            for transformation in applied_splits:
                inverse = self._inverse(transformation)
                if inverse is not None:
                    pool.append(inverse)
            applied_log = [str(t) for t in applied_splits]
            rounds = 0
            exact_rescue_used = False
            # Candidates whose round win was overturned by the exact
            # re-check *against the current mapping*. Their derived costs
            # were only stale relative to this state, so they stay in the
            # pool and become eligible again as soon as the mapping
            # changes (dropping them permanently used to lose later-round
            # wins).
            rejected_here = []
        while rounds < self.max_rounds:
            # Snapshot at the round boundary: a kill anywhere inside the
            # round resumes from its start and replays it identically.
            if rounds % self.checkpoint_every == 0:
                self._save_checkpoint(
                    evaluator, rounds=rounds, current=current,
                    base_eval=base_eval, pool=pool,
                    rejected_here=rejected_here, applied_log=applied_log,
                    exact_rescue_used=exact_rescue_used)
            rounds += 1
            with self.tracer.span("round", index=rounds,
                                  pool=len(pool)) as round_span:
                eligible = [c for c in pool
                            if not any(c is r for r in rejected_here)]
                if rejected_here:
                    round_span.set("held_back", len(rejected_here))
                best: tuple[float, Transformation,
                            EvaluatedMapping] | None = None
                scored: list[tuple[float, Transformation]] = []
                costed = self._cost_candidates(eligible, current, evaluator)
                for candidate, evaluated in zip(eligible, costed):
                    if evaluated is None:
                        continue
                    scored.append((evaluated.total_cost, candidate))
                    if evaluated.total_cost < current.total_cost and \
                            (best is None or
                             evaluated.total_cost < best[0]):
                        best = (evaluated.total_cost, candidate, evaluated)
                round_span.set("scored", len(scored))
                if best is None and self.derivation.enabled and \
                        not exact_rescue_used and scored:
                    # Derivation is heuristic; before stopping,
                    # exact-check the lowest-derived-cost candidates so
                    # its noise cannot end the search early (keeps the
                    # paper's <= few-percent quality loss at a bounded
                    # extra cost).
                    exact_rescue_used = True
                    round_span.set("exact_rescue", True)
                    scored.sort(key=lambda pair: pair[0])
                    rescue = [candidate for _, candidate in scored[:3]]
                    for candidate, evaluated in zip(
                            rescue, self._cost_candidates(
                                rescue, current, evaluator, exact=True)):
                        if evaluated is None:
                            continue
                        if evaluated.total_cost < current.total_cost and \
                                (best is None or
                                 evaluated.total_cost < best[0]):
                            best = (evaluated.total_cost, candidate,
                                    evaluated)
                if best is None:
                    round_span.set("improved", False)
                    break
                _, winner, evaluated = best
                if self.derivation.enabled:
                    # Re-estimate the round winner without derivation
                    # (Fig. 3 line 18 / Section 4.8 closing remark).
                    with self.tracer.span("recheck_winner"):
                        exact = self._recheck_winner(evaluator, evaluated)
                    if exact is None or \
                            exact.total_cost >= current.total_cost:
                        round_span.set("improved", False)
                        round_span.set("winner_rejected", str(winner))
                        rejected_here.append(winner)
                        continue
                    evaluated = exact
                current = evaluated
                applied_log.append(str(winner))
                pool = [c for c in pool if c is not winner]
                rejected_here = []
                round_span.set("improved", True)
                round_span.set("winner", str(winner))
                round_span.set("cost", evaluated.total_cost)
        # Never return a design costlier than the base mapping's tuned
        # design: if the split-everything start landed in a bad local
        # minimum the merges could not escape, fall back.
        if base_eval is not None and \
                base_eval.total_cost < current.total_cost:
            current = base_eval
            applied_log = ["(reverted to base mapping)"]
        return DesignResult(
            algorithm="greedy",
            workload=self.workload,
            mapping=current.mapping,
            schema=current.schema,
            configuration=current.tuning.configuration,
            sql_queries=current.sql_queries,
            estimated_cost=current.total_cost,
            counters=self.counters,
            rounds=rounds,
            applied=applied_log,
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _problem_key(self) -> str:
        """Everything that must match for a checkpoint to be resumable."""
        settings = (self.use_selection, self.include_subsumed, self.merging,
                    self.derivation.enabled, self.cmax, self.coverage,
                    self.max_rounds)
        return "|".join([
            problem_digest(self.workload, self.collected, self.storage_bound),
            mapping_digest(self.base_mapping), repr(settings)])

    def _save_checkpoint(self, evaluator: MappingEvaluator, **loop_state
                         ) -> None:
        if self.checkpoint is None:
            return
        # One pickle for the whole snapshot: shared references (e.g.
        # ``rejected_here`` members aliasing ``pool`` members, which the
        # round loop compares by identity) survive the round-trip.
        state = {
            "algorithm": "greedy",
            "problem_key": self._problem_key(),
            "counters": _counters_dict(self.counters),
            # The evaluator memo rides along so every cache-hit (and
            # thus derivation) decision after resume matches the
            # uninterrupted run.
            "memo": evaluator._cache,
            "partial_memo": evaluator._partial_cache,
            "advisor_costs": evaluator._advisor_cost_cache,
            **loop_state,
        }
        if self.checkpoint.save(state):
            self.counters.checkpoints_written += 1
            self.tracer.event("checkpoint_saved",
                              rounds=loop_state["rounds"])

    def _restore(self, evaluator: MappingEvaluator) -> dict | None:
        if self.checkpoint is None or not self.resume:
            return None
        state = self.checkpoint.load()
        if state is None:
            return None
        if state.get("algorithm") != "greedy":
            raise CheckpointError(
                f"checkpoint at {self.checkpoint.path} belongs to a "
                f"{state.get('algorithm')!r} search, not greedy")
        if state.get("problem_key") != self._problem_key():
            raise CheckpointError(
                f"checkpoint at {self.checkpoint.path} was written for a "
                "different problem (workload, statistics, bound, base "
                "mapping, or search settings changed)")
        for name, value in state["counters"].items():
            if hasattr(self.counters, name):
                setattr(self.counters, name, value)
        evaluator._cache = state["memo"]
        evaluator._partial_cache = state["partial_memo"]
        evaluator._advisor_cost_cache = state["advisor_costs"]
        self.tracer.event("checkpoint_resumed", rounds=state["rounds"])
        self.tracer.metrics("checkpoint").incr("resumes")
        return state

    # ------------------------------------------------------------------
    def _select_candidates(self) -> CandidateSet:
        if self.use_selection:
            selector = CandidateSelector(self.base_mapping, self.collected,
                                         self.cmax, self.coverage)
            return selector.select(self.workload)
        # Ablation: all applicable transformations, unselected. With
        # ``include_subsumed`` the subsumed ones (outlining, inlining,
        # associativity, commutativity) are searched too — the Fig. 7
        # baseline.
        candidates = CandidateSet()
        for transformation in enumerate_transformations(
                self.base_mapping, include_subsumed=self.include_subsumed,
                default_split_count=self.cmax):
            if transformation.is_merge:
                candidates.merges.append(transformation)
            else:
                candidates.splits.append(transformation)
                if isinstance(transformation, UnionDistribute) and \
                        transformation.distribution.is_implicit:
                    candidates.implicit_unions.append(
                        transformation.distribution)
        return candidates

    def _merge_split_candidates(self, candidates: CandidateSet
                                ) -> list[Transformation]:
        if self.merging == "none" or len(candidates.implicit_unions) < 2:
            return list(candidates.splits)
        merger = CandidateMerger(self.base_mapping, self.collected,
                                 self.workload)
        if self.merging == "greedy":
            merged = merger.merge_greedy(candidates.implicit_unions)
        else:
            merged = merger.merge_exhaustive(candidates.implicit_unions)
        # Implicit-union candidates are replaced by the merged pool.
        out = [t for t in candidates.splits
               if not (isinstance(t, UnionDistribute)
                       and t.distribution.is_implicit)]
        out += [UnionDistribute(d) for d in merged]
        return out

    def _inverse(self, transformation: Transformation) -> Transformation | None:
        from ..mapping import RepetitionSplit, TypeMerge, TypeSplit
        if isinstance(transformation, UnionDistribute):
            return UnionFactorize(transformation.distribution)
        if isinstance(transformation, RepetitionSplit):
            return RepetitionMerge(transformation.rep_node_id)
        if isinstance(transformation, TypeSplit):
            # Undoing a type split = merging the split node back with the
            # nodes that shared its original annotation.
            old = self.base_mapping.annotation_of(transformation.node_id)
            if old is None:
                return None
            sharers = self.base_mapping.nodes_with_annotation(old)
            return TypeMerge(tuple(sharers), old)
        return None

    def _recheck_winner(self, evaluator: MappingEvaluator,
                        evaluated: EvaluatedMapping
                        ) -> EvaluatedMapping | None:
        """Exact re-cost of the round winner (Fig. 3 line 18)."""
        return evaluator.evaluate(evaluated.mapping)

    def _cost_candidates(self, candidates: list[Transformation],
                         current: EvaluatedMapping,
                         evaluator: MappingEvaluator,
                         exact: bool = False
                         ) -> list[EvaluatedMapping | None]:
        """Cost one round's candidates against ``current``, as a batch.

        The derivation decisions (cached hit / partial / exact) are made
        up front per candidate; the resulting exact and partial work
        lists then go through the evaluator's batch API, which fans out
        to the worker pool when ``jobs > 1``. Results align with the
        input list.
        """
        results: list[EvaluatedMapping | None] = [None] * len(candidates)
        exact_items: list[tuple[int, Transformation, Mapping]] = []
        partial_items: list[tuple[int, Transformation, Mapping, dict]] = []
        for index, candidate in enumerate(candidates):
            self.counters.transformations_searched += 1
            try:
                mapping = candidate.validate_applied(current.mapping)
            except MappingError as exc:
                # Inapplicable against the current mapping (e.g. its
                # target was merged away in an earlier round) — skip the
                # candidate, never the whole round.
                note_suppressed(exc, "greedy.validate_applied", self.tracer)
                continue
            if mapping.signature() == current.mapping.signature():
                continue
            if self.derivation.enabled and not exact:
                hit = evaluator.cached(mapping)
                if hit is not None:
                    if self.tracer.enabled:
                        self.tracer.event("derivation", kind="cached",
                                          candidate=str(candidate))
                    results[index] = self._checked_transform(
                        candidate, current, hit)
                    continue
                reuse = self.derivation.reusable_costs(candidate, current)
                # Partial evaluation only pays when a meaningful share
                # of the workload carries over; otherwise it costs
                # nearly a full advisor call *plus* the exact re-check
                # of winners.
                if len(reuse) >= 0.25 * len(self.workload):
                    if self.tracer.enabled:
                        self.tracer.event("derivation", kind="hit",
                                          candidate=str(candidate),
                                          reused=len(reuse))
                    partial_items.append((index, candidate, mapping, reuse))
                    continue
                if self.tracer.enabled:
                    self.tracer.event("derivation", kind="miss",
                                      candidate=str(candidate),
                                      reused=len(reuse))
            exact_items.append((index, candidate, mapping))
        if partial_items:
            evaluations = evaluator.evaluate_partial_many(
                [(mapping, reuse, current)
                 for _, _, mapping, reuse in partial_items])
            for (index, candidate, _, _), evaluated in zip(partial_items,
                                                           evaluations):
                results[index] = self._checked_transform(candidate, current,
                                                         evaluated)
        if exact_items:
            evaluations = evaluator.evaluate_many(
                [mapping for _, _, mapping in exact_items])
            for (index, candidate, _), evaluated in zip(exact_items,
                                                        evaluations):
                results[index] = self._checked_transform(candidate, current,
                                                         evaluated)
        return results

    def _checked_transform(self, candidate: Transformation,
                           current: EvaluatedMapping,
                           evaluated: EvaluatedMapping | None
                           ) -> EvaluatedMapping | None:
        """Debug-mode assertion: the rewrite kept the mapping lossless.

        Both schemas are already derived, so the coverage comparison is
        pure set arithmetic; a violation raises
        :class:`~repro.errors.CheckError` and aborts the search loudly
        rather than letting a lossy mapping win on a bogus cost.
        """
        if evaluated is None:
            return None
        from ..check import check_transform, checks_enabled, enforce

        if checks_enabled():
            enforce(check_transform(current.schema, evaluated.schema,
                                    str(candidate)),
                    self.tracer, context=f"transform:{candidate}")
        return evaluated
