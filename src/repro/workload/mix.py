"""Query-mix sampling for the load harness.

A :class:`Workload` describes *which* queries matter and their relative
weights; a :class:`QueryMix` turns that into a sampling distribution a
load generator can draw from. The default shape is Zipfian — rank ``r``
gets probability proportional to ``1 / r**skew`` — because real query
logs are head-heavy: a handful of hot queries dominate, which is
exactly the regime where a plan cache pays off.

Reproducibility contract
------------------------

Every sampler in this module **requires an explicit seed**. A
``random.Random()`` constructed without one (or the module-level
``random`` functions) would make load-generator runs non-reproducible —
the whole point of a seeded load harness is that ``--seed N`` twice
produces the identical query sequence. :meth:`MixSampler.sequence`
pre-draws the full sequence up front, so the served order is a pure
function of ``(workload, skew, seed)`` no matter how threads interleave
afterwards.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..xpath import XPathQuery
from .model import Workload

__all__ = ["QueryMix", "MixSampler", "zipf_mix"]


@dataclass(frozen=True)
class QueryMix:
    """A sampling distribution over a workload's queries."""

    name: str
    queries: tuple[XPathQuery, ...]
    probabilities: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError("a query mix needs at least one query")
        probabilities = self.probabilities
        if not probabilities:
            probabilities = tuple([1.0 / len(self.queries)]
                                  * len(self.queries))
        if len(probabilities) != len(self.queries):
            raise WorkloadError(
                "mix probabilities and queries differ in length")
        if any(p <= 0 for p in probabilities):
            raise WorkloadError("mix probabilities must be positive")
        total = sum(probabilities)
        object.__setattr__(self, "probabilities",
                           tuple(p / total for p in probabilities))

    def __len__(self) -> int:
        return len(self.queries)

    def describe(self) -> str:
        lines = [f"mix {self.name!r}:"]
        for query, probability in zip(self.queries, self.probabilities):
            lines.append(f"  {probability:6.2%}  {query}")
        return "\n".join(lines)


def zipf_mix(workload: Workload, skew: float = 1.0,
             name: str | None = None) -> QueryMix:
    """Zipf-distribute a workload's queries by their weight rank.

    Queries are ranked by descending workload weight (ties broken by
    position, so the mix is deterministic), and rank ``r`` receives
    probability proportional to ``1 / r**skew``. ``skew=0`` degenerates
    to uniform; larger skews concentrate traffic on the head queries.
    """
    if skew < 0:
        raise WorkloadError("zipf skew must be >= 0")
    ranked = sorted(enumerate(workload.queries),
                    key=lambda pair: (-pair[1].weight, pair[0]))
    queries = tuple(weighted.query for _, weighted in ranked)
    probabilities = tuple(1.0 / (rank + 1) ** skew
                          for rank in range(len(queries)))
    return QueryMix(name=name or f"{workload.name}-zipf{skew:g}",
                    queries=queries, probabilities=probabilities)


class MixSampler:
    """Deterministic sampler over a :class:`QueryMix`.

    The seed is a required argument on purpose — see the module
    docstring. Two samplers built with the same ``(mix, seed)`` yield
    identical sequences.
    """

    def __init__(self, mix: QueryMix, seed: int):
        if seed is None:  # belt-and-braces against seed-plumbing holes
            raise WorkloadError("MixSampler requires an explicit seed")
        self.mix = mix
        self.seed = seed
        self._rng = random.Random(seed)
        self._cumulative: list[float] = []
        running = 0.0
        for probability in mix.probabilities:
            running += probability
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0  # guard against float drift

    def sample_index(self) -> int:
        """Index into ``mix.queries`` of the next drawn query.

        ``bisect_left`` finds the first cumulative bound ``>= point`` —
        the same first-bound-wins semantics as a linear scan, in
        O(log queries) per draw instead of O(queries); the sampled
        sequence for a fixed ``(mix, seed)`` is pinned byte-identical
        to the scan by ``tests/test_workload.py``.
        """
        point = self._rng.random()
        index = bisect.bisect_left(self._cumulative, point)
        # The final bound is exactly 1.0 and random() < 1.0, so the
        # clamp only guards against float drift.
        return min(index, len(self._cumulative) - 1)

    def sample(self) -> XPathQuery:
        return self.mix.queries[self.sample_index()]

    def sequence(self, n: int) -> list[int]:
        """The next ``n`` sampled indices (a reproducible schedule)."""
        return [self.sample_index() for _ in range(n)]
