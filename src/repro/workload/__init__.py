"""Workload model and random generator (paper Section 5.1.3)."""

from .generator import (HIGH_PROJECTIONS, HIGH_SELECTIVITY, LOW_PROJECTIONS,
                        LOW_SELECTIVITY, WorkloadGenerator)
from .model import WeightedQuery, WeightedUpdate, Workload

__all__ = [
    "Workload",
    "WeightedQuery",
    "WeightedUpdate",
    "WorkloadGenerator",
    "LOW_SELECTIVITY",
    "HIGH_SELECTIVITY",
    "LOW_PROJECTIONS",
    "HIGH_PROJECTIONS",
]
