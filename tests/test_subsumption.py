"""Verify Theorem 1 (paper Section 3.1).

"Let T' be the schema after applying a sequence of outlining, inlining,
associativity and commutativity transformations to T. The relations
mapped from T' are a vertical partitioning of the relations R0 mapped
from T0 (the fully inlined schema)."

Vertical partitioning (paper definition): for each relation R in R0
there exist relations in R' whose columns (ID/PID excluded) union to R's
columns and which share ID and PID; conversely no R' relation mixes
columns of two R0 relations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import dblp_schema, movie_schema
from repro.errors import TransformError
from repro.mapping import (Inline, Outline, derive_schema, fully_inlined,
                           hybrid_inlining)
from repro.xsd import NodeKind


def _column_partition(schema):
    """Map each data column to its table, plus per-table column sets."""
    tables = {}
    for group in schema.groups.values():
        for partition in group.partitions:
            columns = frozenset(c for c in partition.column_names
                                if c not in ("ID", "PID"))
            tables[partition.table_name] = columns
    return tables


def _region_column_owner(schema):
    """leaf node id -> owning annotated node id (for comparing regions)."""
    return {leaf_id: schema.owner_of[leaf_id]
            for leaf_id in schema.column_of_leaf}


def _apply_random_subsumed(tree, mapping, rng, n_ops=6):
    """Apply a random sequence of outline/inline transformations."""
    applied = []
    current = mapping
    tags = [n for n in tree.iter_nodes() if n.kind == NodeKind.TAG]
    for _ in range(n_ops):
        node = rng.choice(tags)
        if current.annotation_of(node.node_id) is None:
            op = Outline(node.node_id, f"{node.name}_o{node.node_id}")
        else:
            op = Inline(node.node_id)
        try:
            current = op.validate_applied(current)
            applied.append(op)
        except Exception:
            continue
    return current, applied


@pytest.mark.parametrize("make_tree", [dblp_schema, movie_schema],
                         ids=["dblp", "movie"])
@pytest.mark.parametrize("seed", range(8))
def test_theorem1_vertical_partitioning(make_tree, seed):
    """Any outline/inline sequence yields a vertical partitioning of T0."""
    tree = make_tree()
    base = fully_inlined(tree)
    base_schema = derive_schema(base)
    rng = random.Random(seed)
    transformed, applied = _apply_random_subsumed(tree, base, rng)
    schema = derive_schema(transformed)

    # Locate every base-inlined leaf under the transformed mapping: it
    # lives either as an inline column or as its own table's value
    # column (an outlined leaf).
    def transformed_table(leaf_id: int) -> str:
        storage = schema.storage_of(leaf_id)
        if storage.is_inlined:
            return storage.inline_annotation
        assert storage.has_own_table
        return storage.own_annotation

    base_owner = {leaf: base.owner_of(leaf)
                  for leaf in base_schema.column_of_leaf}

    # Vertical partitioning property 1: no transformed table mixes
    # columns of two different base relations.
    grouping: dict[str, set[int]] = {}
    for leaf_id in base_schema.column_of_leaf:
        grouping.setdefault(transformed_table(leaf_id), set()).add(
            base_owner[leaf_id])
    for annotation, base_owners in grouping.items():
        assert len(base_owners) == 1, (
            f"table {annotation!r} mixes columns from base relations "
            f"{sorted(base_owners)}: not a vertical partitioning "
            f"(applied: {[str(a) for a in applied]})")

    # Vertical partitioning property 2: every base column is stored
    # somewhere (the partitions' union covers the base relation).
    for leaf_id in base_schema.column_of_leaf:
        assert transformed_table(leaf_id) in schema.groups


def test_outlining_alone_produces_same_relational_content():
    """Outlining title from inproc: the two relations' columns union to
    the original relation's columns and share the ID/PID linkage —
    i.e. the covering-index-equivalent structure of Section 1.2."""
    tree = dblp_schema()
    base = hybrid_inlining(tree)
    title = tree.find_tag_by_path(("dblp", "inproceedings", "title"))
    outlined = Outline(title.node_id, "ititle").validate_applied(base)
    base_schema = derive_schema(base)
    out_schema = derive_schema(outlined)
    base_cols = set(base_schema.group("inproc").partitions[0].column_names)
    rest = set(out_schema.group("inproc").partitions[0].column_names)
    part = set(out_schema.group("ititle").partitions[0].column_names)
    assert (rest | part) - {"ID", "PID"} == base_cols - {"ID", "PID"}


def test_commutativity_and_associativity_are_schema_neutral():
    """The cost-neutral subsumed transformations leave the derived
    relational schema untouched (our engine treats column order as
    cost-free, so they are modelled as identities)."""
    from repro.mapping import Associativity, Commutativity
    tree = dblp_schema()
    base = hybrid_inlining(tree)
    inproc = tree.find_tag_by_path(("dblp", "inproceedings"))
    for op in (Commutativity(inproc.node_id), Associativity(inproc.node_id)):
        assert op.apply(base).signature() == base.signature()
        assert op.subsumed


def test_inline_outline_never_changes_query_results():
    """Subsumed transformations must not change translated-query results
    (they only repartition columns vertically)."""
    from repro.datasets import generate_dblp
    from repro.engine import Database
    from repro.mapping import load_documents
    from repro.translate import translate_xpath

    tree = dblp_schema()
    doc = generate_dblp(150, seed=31)
    base = hybrid_inlining(tree)
    title = tree.find_tag_by_path(("dblp", "inproceedings", "title"))
    outlined = Outline(title.node_id, "ititle").validate_applied(base)
    xpath = '/dblp/inproceedings[year >= "1990"]/(title | booktitle)'

    values = []
    for mapping in (base, outlined):
        schema = derive_schema(mapping)
        db = Database()
        load_documents(db, schema, doc)
        rows = db.execute(translate_xpath(schema, xpath)).rows
        values.append(sorted(str(v) for row in rows for v in row[1:]
                             if v is not None))
    assert values[0] == values[1]
