"""Convert a DTD to a schema tree.

The paper notes: "Our work also applies to XML data with DTD by first
transforming DTD to XSD." This module implements that front-end for the
classic DTD content-model syntax::

    <!ELEMENT dblp (inproceedings | book)*>
    <!ELEMENT inproceedings (title, booktitle, year, author*, pages, ee?)>
    <!ELEMENT title (#PCDATA)>

``#PCDATA`` leaves become string-typed simple elements. The required
table annotations (root, elements under ``*``/``+``) are assigned
automatically from the element names.
"""

from __future__ import annotations

import re

from ..errors import XSDError
from .nodes import UNBOUNDED, BaseType, NodeKind, SchemaNode
from .tree import SchemaTree, TreeBuilder

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.:-]+)\s+(.*?)>", re.DOTALL)


class _ModelParser:
    """Recursive-descent parser for DTD content models."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self):
        model = self._parse_particle()
        self._skip_ws()
        if self.pos != len(self.text):
            raise XSDError(f"trailing content in DTD model: {self.text[self.pos:]!r}")
        return model

    def _parse_particle(self):
        """particle := atom suffix?  where atom := name | '(' group ')'"""
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            atom = self._parse_group()
        else:
            atom = self._parse_name()
        return self._apply_suffix(atom)

    def _parse_group(self):
        """group := particle ((',' particle)* | ('|' particle)*) ')'"""
        items = [self._parse_particle()]
        separator = None
        while True:
            ch = self._peek()
            if ch == ")":
                self.pos += 1
                break
            if ch not in (",", "|"):
                raise XSDError(f"expected ',' '|' or ')' in DTD model at {self.pos}")
            if separator is None:
                separator = ch
            elif ch != separator:
                raise XSDError("mixed ',' and '|' in one DTD group; add parentheses")
            self.pos += 1
            items.append(self._parse_particle())
        if separator == "|":
            return ("choice", items)
        if len(items) == 1:
            return items[0]
        return ("seq", items)

    def _parse_name(self):
        self._skip_ws()
        match = re.match(r"#?[\w.:-]+", self.text[self.pos:])
        if not match:
            raise XSDError(f"expected a name in DTD model at {self.pos}")
        self.pos += len(match.group(0))
        name = match.group(0)
        if name == "#PCDATA":
            return ("pcdata",)
        return ("name", name)

    def _apply_suffix(self, atom):
        ch = self.text[self.pos] if self.pos < len(self.text) else ""
        if ch == "*":
            self.pos += 1
            return ("rep", 0, atom)
        if ch == "+":
            self.pos += 1
            return ("rep", 1, atom)
        if ch == "?":
            self.pos += 1
            return ("opt", atom)
        return atom


def parse_dtd(text: str, root: str, name: str = "dtd-schema") -> SchemaTree:
    """Parse DTD text and build the schema tree rooted at ``root``."""
    models: dict[str, object] = {}
    for match in _ELEMENT_RE.finditer(text):
        element_name, model_text = match.group(1), match.group(2).strip()
        if element_name in models:
            raise XSDError(f"duplicate <!ELEMENT {element_name}>")
        if model_text == "EMPTY":
            models[element_name] = ("empty",)
        elif model_text == "ANY":
            raise XSDError("ANY content models are not supported")
        else:
            models[element_name] = _ModelParser(model_text).parse()
    if root not in models:
        raise XSDError(f"root element {root!r} not declared in DTD")

    builder = TreeBuilder(name)
    in_progress: list[str] = []

    def build_element(element_name: str, parent: SchemaNode | None,
                      force_annotation: bool) -> SchemaNode:
        if element_name in in_progress:
            cycle = " -> ".join(in_progress + [element_name])
            raise XSDError(
                f"recursive element type {cycle}; recursive schemas are "
                f"out of scope (paper Section 2)")
        in_progress.append(element_name)
        annotation = element_name if (force_annotation or parent is None) else None
        tag = builder.tag(element_name, parent, annotation=annotation)
        model = models.get(element_name)
        if model is None:
            raise XSDError(f"element {element_name!r} referenced but not declared")
        if model == ("pcdata",) or model == ("empty",):
            builder.simple(tag, BaseType.STRING)
        else:
            build_particle(model, tag, under_rep=False)
        in_progress.pop()
        return tag

    def build_particle(model, parent: SchemaNode, under_rep: bool) -> None:
        kind = model[0]
        if kind == "name":
            build_element(model[1], parent, force_annotation=under_rep)
        elif kind == "pcdata":
            builder.simple(parent, BaseType.STRING)
        elif kind == "seq":
            target = parent
            if parent.kind in (NodeKind.REPETITION, NodeKind.OPTION):
                target = builder.seq(parent)
            for item in model[1]:
                build_particle(item, target, under_rep)
        elif kind == "choice":
            choice = builder.choice(parent)
            for item in model[1]:
                build_particle(item, choice, under_rep)
        elif kind == "rep":
            rep = builder.rep(parent, min_occurs=model[1], max_occurs=UNBOUNDED)
            build_particle(model[2], rep, under_rep=True)
        elif kind == "opt":
            opt = builder.opt(parent)
            build_particle(model[1], opt, under_rep)
        else:  # pragma: no cover - parser produces only the kinds above
            raise XSDError(f"unknown DTD model node {kind!r}")

    root_node = build_element(root, None, force_annotation=True)
    return builder.build(root_node)
