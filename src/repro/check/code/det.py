"""DET0xx — determinism lints.

The reproduction's core promise is that the same workload always
yields the same design (same digests, same cache keys, same reports).
Hidden nondeterminism breaks that silently, so this pass flags the
stdlib constructs it can creep in through:

* **DET001** — an unseeded random source: the module-level ``random.*``
  functions (they share one ambient, unseeded generator),
  ``random.Random()`` constructed without a seed, or
  ``random.SystemRandom`` (nondeterministic by design). Seeded
  ``random.Random(seed)`` streams are the sanctioned pattern.
* **DET002** — wall-clock reads (``time.time``, ``datetime.now``,
  ``datetime.utcnow``): their values differ run to run, so any that
  reach a result, digest, or cache key destroy reproducibility.
  ``time.perf_counter``/``monotonic`` (durations) are fine.
* **DET003** — iterating a ``set``/``frozenset`` directly (``for``,
  comprehensions, ``list()``/``tuple()``/``join()``): set order
  depends on ``PYTHONHASHSEED``. Wrap the set in ``sorted()``.
* **DET004** — consuming a directory listing (``os.listdir``,
  ``glob``/``iglob``/``rglob``, ``iterdir``, ``scandir``) without
  ``sorted()``: filesystem order is platform- and history-dependent.
"""

from __future__ import annotations

import ast

from ..findings import Findings
from .walker import SourceModule

__all__ = ["check_determinism"]

#: Module-level random functions that draw from the shared global RNG.
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss", "normalvariate",
    "lognormvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "seed",
})

#: Dotted call targets that read the wall clock.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
})

#: Callables whose result does not depend on iteration order, so an
#: unordered iterable is fine as their argument.
_ORDER_NEUTRAL = frozenset({
    "sorted", "len", "max", "min", "sum", "any", "all",
    "set", "frozenset", "Counter",
})

_LISTING_ATTRS = frozenset({
    "listdir", "scandir", "iterdir", "glob", "iglob", "rglob",
})


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure attribute chain on a name, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expression(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset"))


def _order_neutral_parent(module: SourceModule, node: ast.AST) -> bool:
    """Is ``node`` directly an argument of an order-neutral call?"""
    parent = module.parent(node)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_NEUTRAL
            and node in parent.args)


def check_determinism(module: SourceModule) -> Findings:
    findings = Findings()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            _check_call(module, node, findings)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _check_iteration(module, node.iter, findings)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                _check_iteration(module, generator.iter, findings)
    return findings


def _check_call(module: SourceModule, node: ast.Call,
                findings: Findings) -> None:
    dotted = _dotted(node.func)

    # DET001 — unseeded randomness
    if dotted is not None and dotted.startswith("random."):
        tail = dotted.split(".", 1)[1]
        if tail in _GLOBAL_RNG_FNS:
            findings.add(
                "DET001",
                f"module-level random.{tail}() draws from the shared "
                f"unseeded generator; use a seeded random.Random(seed)",
                module.location(node))
        elif tail == "Random" and not node.args and not node.keywords:
            findings.add(
                "DET001",
                "random.Random() constructed without a seed",
                module.location(node))
        elif tail == "SystemRandom":
            findings.add(
                "DET001",
                "random.SystemRandom is nondeterministic by design",
                module.location(node))
    elif isinstance(node.func, ast.Name) and node.func.id == "Random" \
            and not node.args and not node.keywords:
        findings.add("DET001", "Random() constructed without a seed",
                     module.location(node))

    # DET002 — wall clock
    if dotted is not None and dotted in _WALL_CLOCK:
        findings.add(
            "DET002",
            f"{dotted}() reads the wall clock; results that embed it "
            f"differ run to run (use perf_counter/monotonic for "
            f"durations, or pass timestamps in)",
            module.location(node))

    # DET003 — set fed to an order-sensitive consumer
    if isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple"):
        for arg in node.args:
            if _is_set_expression(arg):
                findings.add(
                    "DET003",
                    f"{node.func.id}() over a set preserves hash order; "
                    f"wrap the set in sorted()",
                    module.location(arg))
    if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
        for arg in node.args:
            if _is_set_expression(arg):
                findings.add(
                    "DET003",
                    "join() over a set concatenates in hash order; "
                    "wrap the set in sorted()",
                    module.location(arg))

    # DET004 — unsorted directory listing
    if isinstance(node.func, ast.Attribute) and \
            node.func.attr in _LISTING_ATTRS and \
            not _order_neutral_parent(module, node):
        findings.add(
            "DET004",
            f"{node.func.attr}() returns entries in filesystem order; "
            f"wrap the call in sorted()",
            module.location(node))


def _check_iteration(module: SourceModule, iterable: ast.expr,
                     findings: Findings) -> None:
    if _is_set_expression(iterable):
        findings.add(
            "DET003",
            "iteration over a set follows hash order; "
            "wrap the set in sorted()",
            module.location(iterable))
