"""Baseline (grandfathering) store for code-lint findings.

A lint introduced onto an existing tree either starts red or starts
lying. The baseline is the third option: known findings are committed
to ``check_baseline.json`` with a per-entry justification, the CI gate
fails only on *new* findings, and the baseline is expected to shrink
to empty as the grandfathered sites are fixed.

Keys are line-number-free — ``sha1(code | path | message)`` — so
unrelated edits that shift a finding up or down a file do not break
the match; any change to the finding itself (different code, file, or
message, which embeds the symbol names) does.

The file layout is canonical (sorted keys, two-space indent, trailing
newline), so load → save round-trips byte-identically and diffs stay
reviewable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..findings import Finding, Findings

__all__ = ["Baseline", "BaselineEntry", "finding_key", "load_baseline",
           "write_baseline"]

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Stable, line-number-free identity of one finding."""
    path = finding.location.rsplit(":", 1)[0]
    raw = f"{finding.code}|{path}|{finding.message}"
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    key: str
    code: str
    location: str
    message: str
    justification: str = ""

    def to_dict(self) -> dict[str, str]:
        return {"key": self.key, "code": self.code,
                "location": self.location, "message": self.message,
                "justification": self.justification}


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @property
    def keys(self) -> set[str]:
        return {entry.key for entry in self.entries}

    def apply(self, findings: Findings) -> tuple[Findings, Findings]:
        """Split into ``(new, grandfathered)`` against this baseline."""
        known = self.keys
        fresh, matched = Findings(), Findings()
        for finding in findings:
            bucket = matched if finding_key(finding) in known else fresh
            bucket.items.append(finding)
        return fresh, matched

    def to_json(self) -> str:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict()
                        for entry in sorted(self.entries,
                                            key=lambda e: (e.location,
                                                           e.code, e.key))],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_findings(cls, findings: Findings,
                      justification: str = "") -> "Baseline":
        return cls(entries=[
            BaselineEntry(key=finding_key(f), code=f.code,
                          location=f.location, message=f.message,
                          justification=justification)
            for f in findings])


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = [BaselineEntry(key=e["key"], code=e["code"],
                             location=e.get("location", ""),
                             message=e.get("message", ""),
                             justification=e.get("justification", ""))
               for e in payload.get("entries", [])]
    return Baseline(entries=entries)


def write_baseline(path: str | Path, baseline: Baseline) -> Path:
    path = Path(path)
    path.write_text(baseline.to_json(), encoding="utf-8")
    return path
