"""An error-rate circuit breaker with a seeded probe schedule.

A :class:`CircuitBreaker` protects a request path from pouring work
into a backend that has started failing wholesale. It watches a
sliding window of request outcomes and runs a two-state machine:

* **closed** — requests flow; outcomes are recorded. When the window
  holds at least ``min_requests`` outcomes and the failure fraction
  reaches ``failure_threshold``, the breaker *trips* to open.
* **open** — requests **fast-fail** (the caller rejects them without
  touching the backend) except for scheduled *probes*: an arrival
  while open is admitted as a half-open trial when a deterministic
  draw from ``(seed, trip number, arrivals since the trip)`` falls
  below ``probe_rate``. A probe that succeeds closes the breaker (the
  window restarts empty); a probe that fails leaves it open and the
  schedule simply continues.

Determinism is the point of the seeded schedule: given the same
sequence of arrivals and outcomes, the breaker trips, probes, and
recovers at exactly the same points on every run — the same hashing
idiom as :class:`~repro.resilience.faults.FaultPlan`, so chaos-serve
runs are reproducible in CI. The class is thread-safe; under
concurrent arrivals the *decisions* stay a pure function of each
arrival's position in the serialized order the lock imposes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque

__all__ = ["CircuitBreaker", "CLOSED", "OPEN"]

#: Breaker states (``snapshot()["state"]``).
CLOSED = "closed"
OPEN = "open"


class CircuitBreaker:
    """Trip to fast-fail on a high error rate; recover via probes."""

    def __init__(self, window: int = 64, min_requests: int = 16,
                 failure_threshold: float = 0.5,
                 probe_rate: float = 0.25, seed: int = 0):
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if not 0.0 < probe_rate <= 1.0:
            raise ValueError("probe_rate must be in (0, 1]")
        self.window = window
        self.min_requests = min_requests
        self.failure_threshold = failure_threshold
        self.probe_rate = probe_rate
        self.seed = seed
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._arrivals = 0       # since the last trip (open state only)
        self.trips = 0
        self.probes = 0
        self.probe_failures = 0
        self.fast_fails = 0

    # ------------------------------------------------------------------
    def _probe_draw(self, arrival: int) -> float:
        digest = hashlib.sha1(
            f"{self.seed}|{self.trips}|{arrival}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def admit(self) -> str:
        """Decide one arrival: ``"allow"``, ``"probe"``, or ``"shed"``.

        ``shed`` means the caller must fast-fail the request without
        executing it; ``probe`` means execute it and report the outcome
        with ``record(..., probe=True)`` — it is the half-open trial.
        """
        with self._lock:
            if self._state == CLOSED:
                return "allow"
            self._arrivals += 1
            if self._probe_draw(self._arrivals) < self.probe_rate:
                self.probes += 1
                return "probe"
            self.fast_fails += 1
            return "shed"

    def record(self, success: bool, probe: bool = False) -> None:
        """Report the outcome of an admitted (or probe) request."""
        with self._lock:
            if probe:
                if success:
                    self._state = CLOSED
                    self._outcomes.clear()
                else:
                    self.probe_failures += 1
                return
            if self._state == OPEN:
                # A request admitted before the trip finishing after it
                # carries no information about the current state.
                return
            self._outcomes.append(success)
            n = len(self._outcomes)
            failures = sum(1 for ok in self._outcomes if not ok)
            if n >= self.min_requests and \
                    failures / n >= self.failure_threshold:
                self._state = OPEN
                self.trips += 1
                self._arrivals = 0
                self._outcomes.clear()

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        """Counters + state, for :meth:`QueryService.stats` and reports."""
        with self._lock:
            return {
                "state": self._state,
                "trips": self.trips,
                "probes": self.probes,
                "probe_failures": self.probe_failures,
                "fast_fails": self.fast_fails,
            }
