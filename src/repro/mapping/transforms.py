"""The schema transformations of paper Section 2.1.

Eight transformation families over mappings:

===================  ==========  ===========
transformation       subsumed?   merge/split
===================  ==========  ===========
outlining            yes         split
inlining             yes         merge
type split           no          split
type merge           no          merge
union distribution   no          split
union factorization  no          merge
repetition split     no          split
repetition merge     no          merge
associativity        yes         (neither)
commutativity        yes         (neither)
===================  ==========  ===========

"Subsumed" is the paper's Section 3.1 classification: applied alone, the
transformation's relational effect is a vertical partitioning of the
fully-inlined schema, so physical design (vertical partitioning /
covering indexes) already covers it. ``tests/test_subsumption.py``
verifies Theorem 1 against this implementation.

Associativity and commutativity only reorder/regroup columns of a table;
in this engine column order is cost-neutral, so their ``apply`` is the
identity on the derived schema. They are still enumerated (for the
Table 1 transformation counts and for the Naive-Greedy baseline, which
wastes tuner calls on them exactly as the paper describes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..errors import MappingError, TransformError
from ..xsd import NodeKind, SchemaTree
from .model import Mapping, UnionDistribution


@dataclass(frozen=True)
class Transformation:
    """Base class; concrete subclasses implement ``apply``."""

    @property
    def subsumed(self) -> bool:
        raise NotImplementedError

    @property
    def is_merge(self) -> bool:
        """Merge-type candidates are applied during the greedy rounds;
        split-type candidates are applied up-front to build M0."""
        raise NotImplementedError

    def apply(self, mapping: Mapping) -> Mapping:
        raise NotImplementedError

    def validate_applied(self, mapping: Mapping) -> Mapping:
        applied = self.apply(mapping)
        applied.validate()
        return applied


# ----------------------------------------------------------------------
# Subsumed transformations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Outline(Transformation):
    node_id: int
    annotation: str

    subsumed = True
    is_merge = False

    def apply(self, mapping: Mapping) -> Mapping:
        if mapping.annotation_of(self.node_id) is not None:
            raise TransformError(f"node #{self.node_id} is already outlined")
        return mapping.with_annotation(self.node_id, self.annotation)

    def __str__(self) -> str:
        return f"outline(#{self.node_id} as {self.annotation})"


@dataclass(frozen=True)
class Inline(Transformation):
    node_id: int

    subsumed = True
    is_merge = True

    def apply(self, mapping: Mapping) -> Mapping:
        tree = mapping.tree
        if mapping.annotation_of(self.node_id) is None:
            raise TransformError(f"node #{self.node_id} is not outlined")
        if tree.must_annotate(self.node_id):
            raise TransformError(
                f"node #{self.node_id} must stay annotated")
        return mapping.without_annotation(self.node_id)

    def __str__(self) -> str:
        return f"inline(#{self.node_id})"


@dataclass(frozen=True)
class Commutativity(Transformation):
    """Swap the order of two sibling particles (cost-neutral here)."""

    owner_id: int

    subsumed = True
    is_merge = False

    def apply(self, mapping: Mapping) -> Mapping:
        return mapping

    def __str__(self) -> str:
        return f"commute(#{self.owner_id})"


@dataclass(frozen=True)
class Associativity(Transformation):
    """Regroup sibling particles (cost-neutral here)."""

    owner_id: int

    subsumed = True
    is_merge = False

    def apply(self, mapping: Mapping) -> Mapping:
        return mapping

    def __str__(self) -> str:
        return f"associate(#{self.owner_id})"


# ----------------------------------------------------------------------
# Non-subsumed transformations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TypeSplit(Transformation):
    """Rename one node's shared annotation to a fresh name."""

    node_id: int
    new_annotation: str

    subsumed = False
    is_merge = False

    def apply(self, mapping: Mapping) -> Mapping:
        current = mapping.annotation_of(self.node_id)
        if current is None:
            raise TransformError(f"node #{self.node_id} is not annotated")
        if len(mapping.nodes_with_annotation(current)) < 2:
            raise TransformError(
                f"annotation {current!r} is not shared; nothing to split")
        if self.new_annotation in dict(mapping.annotations).values():
            raise TransformError(
                f"annotation {self.new_annotation!r} already in use")
        return mapping.with_annotation(self.node_id, self.new_annotation)

    def __str__(self) -> str:
        return f"type_split(#{self.node_id} -> {self.new_annotation})"


@dataclass(frozen=True)
class TypeMerge(Transformation):
    """Give structurally equivalent nodes one shared annotation.

    This is the *deep merge* form (paper Section 4.3): nodes need not be
    currently annotated — un-annotated equivalent nodes are outlined
    into the shared table as part of the merge, which is exactly the
    inline-then-merge combination of the two-titles example.
    """

    node_ids: tuple[int, ...]
    annotation: str

    subsumed = False
    is_merge = True

    def apply(self, mapping: Mapping) -> Mapping:
        if len(self.node_ids) < 2:
            raise TransformError("type merge needs at least two nodes")
        tree = mapping.tree
        signatures = {tree.structural_signature(nid) for nid in self.node_ids}
        if len(signatures) > 1:
            raise TransformError(
                f"nodes {self.node_ids} are not logically equivalent")
        out = mapping
        for node_id in self.node_ids:
            out = out.with_annotation(node_id, self.annotation)
        return out

    def __str__(self) -> str:
        ids = ",".join(f"#{n}" for n in self.node_ids)
        return f"type_merge({ids} as {self.annotation})"


@dataclass(frozen=True)
class UnionDistribute(Transformation):
    distribution: UnionDistribution

    subsumed = False
    is_merge = False

    def apply(self, mapping: Mapping) -> Mapping:
        if self.distribution in mapping.distributions:
            raise TransformError("distribution already applied")
        return mapping.with_distribution(self.distribution)

    def __str__(self) -> str:
        d = self.distribution
        if d.choice_id is not None:
            return f"union_distribute(choice #{d.choice_id})"
        ids = ",".join(f"#{n}" for n in sorted(d.optional_ids))
        return f"union_distribute(implicit {ids})"


@dataclass(frozen=True)
class UnionFactorize(Transformation):
    distribution: UnionDistribution

    subsumed = False
    is_merge = True

    def apply(self, mapping: Mapping) -> Mapping:
        if self.distribution not in mapping.distributions:
            raise TransformError("distribution is not applied")
        return mapping.without_distribution(self.distribution)

    def __str__(self) -> str:
        d = self.distribution
        if d.choice_id is not None:
            return f"union_factorize(choice #{d.choice_id})"
        ids = ",".join(f"#{n}" for n in sorted(d.optional_ids))
        return f"union_factorize(implicit {ids})"


@dataclass(frozen=True)
class RepetitionSplit(Transformation):
    rep_node_id: int
    count: int

    subsumed = False
    is_merge = False

    def apply(self, mapping: Mapping) -> Mapping:
        if self.rep_node_id in mapping.split_map:
            raise TransformError(
                f"repetition #{self.rep_node_id} is already split")
        return mapping.with_split(self.rep_node_id, self.count)

    def __str__(self) -> str:
        return f"repetition_split(#{self.rep_node_id}, k={self.count})"


@dataclass(frozen=True)
class RepetitionMerge(Transformation):
    rep_node_id: int

    subsumed = False
    is_merge = True

    def apply(self, mapping: Mapping) -> Mapping:
        if self.rep_node_id not in mapping.split_map:
            raise TransformError(
                f"repetition #{self.rep_node_id} is not split")
        return mapping.without_split(self.rep_node_id)

    def __str__(self) -> str:
        return f"repetition_merge(#{self.rep_node_id})"


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------


def enumerate_transformations(mapping: Mapping,
                              include_subsumed: bool = True,
                              default_split_count: int = 5
                              ) -> list[Transformation]:
    """All transformations applicable to the mapping (validated).

    This is the space the Naive-Greedy baseline explores each round; the
    paper's Greedy restricts itself to the non-subsumed candidates
    selected from the workload instead.
    """
    out: list[Transformation] = []
    for transformation in _generate(mapping, include_subsumed,
                                    default_split_count):
        try:
            transformation.validate_applied(mapping)
        except (TransformError, MappingError):
            continue
        out.append(transformation)
    return out


def _generate(mapping: Mapping, include_subsumed: bool,
              default_split_count: int) -> Iterator[Transformation]:
    tree = mapping.tree
    annotation_map = mapping.annotation_map
    used = set(annotation_map.values())

    if include_subsumed:
        for node in tree.iter_nodes():
            if node.kind != NodeKind.TAG:
                continue
            if node.node_id not in annotation_map:
                name = node.name
                while name in used:
                    name += "_o"
                yield Outline(node.node_id, name)
            elif not tree.must_annotate(node):
                yield Inline(node.node_id)
        for node in tree.iter_nodes():
            if node.kind != NodeKind.TAG:
                continue
            inline_children = [c for c in tree.children(node)
                               if c.kind != NodeKind.SIMPLE]
            if len(inline_children) >= 2:
                yield Commutativity(node.node_id)
            if len(inline_children) >= 3:
                yield Associativity(node.node_id)

    # Type split: any shared annotation.
    for annotation in sorted(set(annotation_map.values())):
        nodes = mapping.nodes_with_annotation(annotation)
        if len(nodes) < 2:
            continue
        for node_id in nodes:
            name = f"{annotation}_s{node_id}"
            yield TypeSplit(node_id, name)

    # Type merge (deep): pairs of equivalent TAG nodes not already merged.
    by_signature: dict[tuple, list[int]] = {}
    for node in tree.iter_nodes():
        if node.kind == NodeKind.TAG:
            by_signature.setdefault(
                tree.structural_signature(node), []).append(node.node_id)
    for signature, nodes in by_signature.items():
        if len(nodes) < 2:
            continue
        for a, b in itertools.combinations(nodes, 2):
            if annotation_map.get(a) is not None and \
                    annotation_map.get(a) == annotation_map.get(b):
                continue  # already merged
            base = tree.node(a).name or "merged"
            name = annotation_map.get(a) or annotation_map.get(b) or base
            yield TypeMerge((a, b), name)

    # Union distribution / factorization.
    for node in tree.iter_nodes():
        if node.kind == NodeKind.CHOICE:
            dist = UnionDistribution(choice_id=node.node_id)
            if dist not in mapping.distributions:
                yield UnionDistribute(dist)
        elif node.kind == NodeKind.OPTION:
            dist = UnionDistribution(
                optional_ids=frozenset({node.node_id}))
            if dist not in mapping.distributions:
                yield UnionDistribute(dist)
    for dist in mapping.distributions:
        yield UnionFactorize(dist)

    # Repetition split / merge (leaf repetitions only).
    for node in tree.iter_nodes():
        if node.kind != NodeKind.REPETITION:
            continue
        child = tree.children(node)[0]
        if not tree.is_leaf_element(child):
            continue
        if node.node_id in mapping.split_map:
            yield RepetitionMerge(node.node_id)
        else:
            yield RepetitionSplit(node.node_id, default_split_count)


def count_transformations(mapping: Mapping) -> tuple[int, int]:
    """(total, non-subsumed) applicable transformation counts (Table 1)."""
    transformations = enumerate_transformations(mapping)
    non_subsumed = sum(1 for t in transformations if not t.subsumed)
    return len(transformations), non_subsumed
