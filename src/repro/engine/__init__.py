"""In-memory relational engine with a cost-based optimizer.

Substitutes for the paper's Microsoft SQL Server 2000 instance: B+-tree
indexes, covering indexes, materialized join views, hash / index-nested-
loop / nested-loop joins, histogram statistics, and a page-I/O + CPU cost
model applied identically by the optimizer (estimates) and the executor
(measurements).
"""

from .btree import BPlusTree, encode_key
from .cost import CostCounter
from .database import Database, ExecutionResult
from .index import Index, primary_key_index
from .matview import derive_view_stats, make_view_table, populate_view
from .optimizer import Optimizer, PlannedQuery
from .schema import (Catalog, Column, ForeignKey, JoinViewDefinition, Table)
from .statistics import ColumnStats, StatisticsCatalog, TableStats
from .types import PAGE_SIZE, SQLType

__all__ = [
    "BPlusTree",
    "encode_key",
    "CostCounter",
    "Database",
    "ExecutionResult",
    "Index",
    "primary_key_index",
    "make_view_table",
    "populate_view",
    "derive_view_stats",
    "Optimizer",
    "PlannedQuery",
    "Catalog",
    "Column",
    "ForeignKey",
    "JoinViewDefinition",
    "Table",
    "ColumnStats",
    "StatisticsCatalog",
    "TableStats",
    "SQLType",
    "PAGE_SIZE",
]
