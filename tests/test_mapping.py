"""Unit tests for mappings, presets, the mapper, and transformations."""

import pytest

from repro.datasets import dblp_schema, movie_schema
from repro.errors import MappingError, TransformError
from repro.mapping import (Inline, Mapping, Outline, RepetitionMerge,
                           RepetitionSplit, TypeMerge, TypeSplit,
                           UnionDistribute, UnionDistribution,
                           UnionFactorize, count_transformations,
                           derive_schema, enumerate_transformations,
                           fully_split, hybrid_inlining, shared_inlining)
from repro.xsd import NodeKind


@pytest.fixture(scope="module")
def dblp():
    return dblp_schema()


@pytest.fixture(scope="module")
def movie():
    return movie_schema()


def author_rep(dblp):
    author = dblp.find_tag_by_path(("dblp", "inproceedings", "author"))
    return dblp.parent(author)


class TestPresets:
    def test_hybrid_inlining_tables(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        assert set(schema.groups) == {"dblp", "inproc", "book", "author",
                                      "cite"}
        inproc = schema.group("inproc")
        names = [c.name for c in inproc.columns]
        assert names == ["ID", "PID", "title", "booktitle", "year", "pages",
                         "ee", "cdrom", "editor"]

    def test_hybrid_shares_author_table(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        assert len(schema.group("author").owner_ids) == 2

    def test_shared_inlining_keeps_title1(self, dblp):
        schema = derive_schema(shared_inlining(dblp))
        assert "title1" in schema.groups
        book = schema.group("book")
        assert not any(c.name == "title" for c in book.columns)

    def test_fully_split_every_tag_annotated(self, movie):
        mapping = fully_split(movie)
        tags = [n for n in movie.iter_nodes() if n.kind == NodeKind.TAG]
        assert len(mapping.annotations) == len(tags)
        schema = derive_schema(mapping)
        # Each annotated leaf gets its own (ID, PID, value) table.
        assert set(schema.group("title").column(c).name
                   for c in ("ID", "PID", "title")) == {"ID", "PID", "title"}

    def test_optional_columns_nullable(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        inproc = schema.group("inproc")
        assert inproc.column("ee").nullable
        assert not inproc.column("title").nullable


class TestMappingValidation:
    def test_must_annotate_enforced(self, dblp):
        mapping = hybrid_inlining(dblp)
        inproc = dblp.find_tag_by_path(("dblp", "inproceedings"))
        broken = mapping.without_annotation(inproc.node_id)
        with pytest.raises(MappingError):
            broken.validate()

    def test_shared_annotation_requires_equivalence(self, dblp):
        mapping = hybrid_inlining(dblp)
        inproc = dblp.find_tag_by_path(("dblp", "inproceedings"))
        book = dblp.find_tag_by_path(("dblp", "book"))
        broken = mapping.with_annotation(inproc.node_id, "x") \
                        .with_annotation(book.node_id, "x")
        with pytest.raises(MappingError):
            broken.validate()

    def test_split_on_non_repetition_rejected(self, dblp):
        mapping = hybrid_inlining(dblp)
        title = dblp.find_tag_by_path(("dblp", "inproceedings", "title"))
        with pytest.raises(MappingError):
            mapping.with_split(title.node_id, 3).validate()

    def test_distribution_on_non_option_rejected(self, movie):
        mapping = hybrid_inlining(movie)
        title = movie.find_tag_by_path(("movies", "movie", "title"))
        with pytest.raises(MappingError):
            UnionDistribution(optional_ids=frozenset({title.node_id}))
            dist = UnionDistribution(
                optional_ids=frozenset({title.node_id}))
            mapping.with_distribution(dist).validate()

    def test_distribution_constructor_needs_target(self):
        with pytest.raises(MappingError):
            UnionDistribution()

    def test_mapping_hashable_and_signature(self, dblp):
        a = hybrid_inlining(dblp)
        b = hybrid_inlining(dblp)
        assert a.signature() == b.signature()
        rep = author_rep(dblp)
        c = a.with_split(rep.node_id, 5)
        assert c.signature() != a.signature()
        assert c.without_split(rep.node_id).signature() == a.signature()


class TestRepetitionSplitMapping:
    def test_split_adds_columns_and_overflow(self, dblp):
        mapping = hybrid_inlining(dblp).with_split(author_rep(dblp).node_id, 5)
        schema = derive_schema(mapping)
        inproc = schema.group("inproc")
        for i in range(1, 6):
            assert inproc.column(f"author_{i}").nullable
        # The overflow is the (shared) author table.
        assert "author" in schema.groups

    def test_leaf_storage_records_both(self, dblp):
        mapping = hybrid_inlining(dblp).with_split(author_rep(dblp).node_id, 3)
        schema = derive_schema(mapping)
        author = dblp.find_tag_by_path(("dblp", "inproceedings", "author"))
        storage = schema.storage_of(author.node_id)
        assert storage.split_columns == ("author_1", "author_2", "author_3")
        assert storage.own_annotation == "author"
        assert storage.value_column == "author"


class TestUnionDistributionMapping:
    def test_choice_partitions(self, movie):
        choice = movie.nodes_of_kind(NodeKind.CHOICE)[0]
        mapping = hybrid_inlining(movie).with_distribution(
            UnionDistribution(choice_id=choice.node_id))
        schema = derive_schema(mapping)
        names = schema.group("movie").table_names
        assert names == ["movie_box_office", "movie_seasons"]
        box = schema.group("movie").partitions[0]
        assert "box_office" in box.column_names
        assert "seasons" not in box.column_names

    def test_implicit_union_partitions(self, movie):
        year_opt = movie.parent(
            movie.find_tag_by_path(("movies", "movie", "year")))
        mapping = hybrid_inlining(movie).with_distribution(
            UnionDistribution(optional_ids=frozenset({year_opt.node_id})))
        schema = derive_schema(mapping)
        has, no = schema.group("movie").partitions
        assert "year" in has.column_names
        assert "year" not in no.column_names


class TestTransformations:
    def test_outline_then_inline_roundtrip(self, dblp):
        mapping = hybrid_inlining(dblp)
        title = dblp.find_tag_by_path(("dblp", "inproceedings", "title"))
        outlined = Outline(title.node_id, "ititle").validate_applied(mapping)
        assert outlined.annotation_of(title.node_id) == "ititle"
        back = Inline(title.node_id).validate_applied(outlined)
        assert back.signature() == mapping.signature()

    def test_inline_must_annotate_rejected(self, dblp):
        mapping = hybrid_inlining(dblp)
        inproc = dblp.find_tag_by_path(("dblp", "inproceedings"))
        with pytest.raises(TransformError):
            Inline(inproc.node_id).apply(mapping)

    def test_type_split_author(self, dblp):
        mapping = hybrid_inlining(dblp)
        authors = dblp.find_tags("author")
        split = TypeSplit(authors[0].node_id, "inproc_author")
        applied = split.validate_applied(mapping)
        schema = derive_schema(applied)
        assert "inproc_author" in schema.groups
        assert len(schema.group("author").owner_ids) == 1

    def test_type_merge_titles_requires_deep_merge(self, dblp):
        # Paper Section 3.3: the two titles merge only after inlining
        # title1; our TypeMerge implements the deep-merge combination.
        mapping = shared_inlining(dblp)
        titles = dblp.find_tags("title")
        merge = TypeMerge(tuple(t.node_id for t in titles), "title_shared")
        applied = merge.validate_applied(mapping)
        schema = derive_schema(applied)
        assert len(schema.group("title_shared").owner_ids) == 2

    def test_type_merge_non_equivalent_rejected(self, dblp):
        mapping = hybrid_inlining(dblp)
        title = dblp.find_tag_by_path(("dblp", "inproceedings", "title"))
        year = dblp.find_tag_by_path(("dblp", "inproceedings", "year"))
        with pytest.raises(TransformError):
            TypeMerge((title.node_id, year.node_id), "bad").apply(mapping)

    def test_union_distribute_factorize_roundtrip(self, movie):
        mapping = hybrid_inlining(movie)
        choice = movie.nodes_of_kind(NodeKind.CHOICE)[0]
        dist = UnionDistribution(choice_id=choice.node_id)
        applied = UnionDistribute(dist).validate_applied(mapping)
        back = UnionFactorize(dist).validate_applied(applied)
        assert back.signature() == mapping.signature()

    def test_repetition_split_merge_roundtrip(self, dblp):
        mapping = hybrid_inlining(dblp)
        rep = author_rep(dblp)
        applied = RepetitionSplit(rep.node_id, 5).validate_applied(mapping)
        back = RepetitionMerge(rep.node_id).validate_applied(applied)
        assert back.signature() == mapping.signature()

    def test_enumerate_counts(self, dblp, movie):
        for tree in (dblp, movie):
            mapping = hybrid_inlining(tree)
            total, non_subsumed = count_transformations(mapping)
            assert non_subsumed < total
            transformations = enumerate_transformations(mapping)
            assert len(transformations) == total
            # Every enumerated transformation is actually applicable.
            for transformation in transformations:
                transformation.validate_applied(mapping)

    def test_enumerate_excluding_subsumed(self, dblp):
        mapping = hybrid_inlining(dblp)
        only_core = enumerate_transformations(mapping,
                                              include_subsumed=False)
        assert all(not t.subsumed for t in only_core)
