"""Cost derivation (paper Section 4.8).

When a transformation ``c`` turns mapping ``M`` into ``M'``, many
workload queries keep the same object set ``I(Q, M') = I(Q, M)`` and
hence the same plan and cost. The rules deciding this:

* **Irrelevant relation rule** — ``c`` changes no relation in
  ``RS(Q)``.
* **Repetition split rule** — the plan under ``M`` answers ``Q`` from a
  covering index of the affected relation (never the base relation) and
  ``Q``'s SQL does not reference the split element.
* **Union / type rule** — for a union distribution/factorization or type
  split/merge on ``R in RS(Q)``: either ``Q`` refers to all partitions
  and none participates in a join, or a repetition split already applies
  on ``R`` (so the relation is nearly empty).

Queries that pass reuse their previous cost; only the rest are handed to
the physical design tool (see
:meth:`repro.search.evaluator.MappingEvaluator.evaluate_partial`).
"""

from __future__ import annotations

from ..errors import MappingError
from ..mapping import (Inline, Outline, RepetitionMerge, RepetitionSplit,
                       Transformation, TypeMerge, TypeSplit, UnionDistribute,
                       UnionFactorize)
from ..obs import get_tracer
from ..resilience import note_suppressed
from ..sqlast import Query
from .evaluator import EvaluatedMapping


def affected_annotations(transformation: Transformation,
                         evaluated: EvaluatedMapping) -> set[str]:
    """Table-group annotations whose relations the transformation changes."""
    mapping = evaluated.mapping
    tree = mapping.tree
    out: set[str] = set()

    def owner_annotation(node_id: int) -> str | None:
        try:
            owner = mapping.owner_of(node_id)
        except MappingError as exc:
            note_suppressed(exc, "derivation.owner_of", get_tracer())
            return None
        return mapping.annotation_of(owner)

    if isinstance(transformation, TypeSplit):
        out.add(mapping.annotation_of(transformation.node_id) or "")
        out.add(transformation.new_annotation)
    elif isinstance(transformation, TypeMerge):
        out.add(transformation.annotation)
        for node_id in transformation.node_ids:
            annotation = mapping.annotation_of(node_id) or \
                owner_annotation(node_id)
            if annotation:
                out.add(annotation)
    elif isinstance(transformation, (UnionDistribute, UnionFactorize)):
        owner = mapping.distribution_owner(transformation.distribution)
        annotation = mapping.annotation_of(owner)
        if annotation:
            out.add(annotation)
    elif isinstance(transformation, (RepetitionSplit, RepetitionMerge)):
        rep = tree.node(transformation.rep_node_id)
        leaf = tree.children(rep)[0]
        leaf_annotation = mapping.annotation_of(leaf.node_id) or \
            owner_annotation(leaf.node_id)
        if leaf_annotation:
            out.add(leaf_annotation)
        parent = tree.nearest_tag_ancestor(rep)
        if parent is not None:
            annotation = owner_annotation(parent.node_id)
            if annotation:
                out.add(annotation)
    elif isinstance(transformation, (Inline, Outline)):
        annotation = owner_annotation(transformation.node_id)
        if annotation:
            out.add(annotation)
    out.discard("")
    return out


def _affected_tables(annotations: set[str],
                     evaluated: EvaluatedMapping) -> set[str]:
    tables: set[str] = set()
    for annotation in annotations:
        group = evaluated.schema.groups.get(annotation)
        if group is not None:
            tables.update(group.table_names)
    return tables


def _split_element_columns(transformation, evaluated: EvaluatedMapping
                           ) -> set[str]:
    """Column names carrying the repetition-split element's values."""
    tree = evaluated.mapping.tree
    rep = tree.node(transformation.rep_node_id)
    leaf = tree.children(rep)[0]
    try:
        storage = evaluated.schema.storage_of(leaf.node_id)
    except MappingError as exc:
        note_suppressed(exc, "derivation.storage_of", get_tracer())
        return {leaf.name}
    out = set(storage.split_columns)
    if storage.column:
        out.add(storage.column)
    if storage.value_column:
        out.add(storage.value_column)
    out.add(leaf.name)
    return out


def _sql_texts(evaluated: EvaluatedMapping) -> list[str]:
    """Rendered SQL per workload query, memoized on the evaluation."""
    cached = getattr(evaluated, "_sql_texts", None)
    if cached is None:
        cached = [str(sql) for sql, _ in evaluated.sql_queries]
        evaluated._sql_texts = cached  # type: ignore[attr-defined]
    return cached


def _referenced_tables(evaluated: EvaluatedMapping) -> list[frozenset[str]]:
    """Referenced base tables per workload query, memoized."""
    cached = getattr(evaluated, "_referenced_tables", None)
    if cached is None:
        cached = [sql.referenced_tables for sql, _ in evaluated.sql_queries]
        evaluated._referenced_tables = cached  # type: ignore[attr-defined]
    return cached


def _union_rule_holds(sql: Query, affected_tables: set[str],
                      evaluated: EvaluatedMapping,
                      annotations: set[str]) -> bool:
    # Case 2: a repetition split already applies on the affected region.
    mapping = evaluated.mapping
    tree = mapping.tree
    for rep_id in mapping.split_map:
        parent = tree.nearest_tag_ancestor(tree.node(rep_id))
        if parent is None:
            continue
        owner = mapping.owner_of(parent.node_id)
        if mapping.annotation_of(owner) in annotations:
            return True
    # Case 1: every SELECT touching an affected table is join-free.
    touches_any = False
    for select in sql.selects:
        touched = [t for t in select.from_tables
                   if t.table in affected_tables]
        if not touched:
            continue
        touches_any = True
        if len(select.from_tables) > 1:
            return False
        where_text = str(select.where) if select.where is not None else ""
        if "EXISTS" in where_text:
            return False
    return touches_any


class CostDerivation:
    """Applies the Section 4.8 rules to one (base mapping, candidate)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def reusable_costs(self, transformation: Transformation,
                       evaluated: EvaluatedMapping) -> dict[int, float]:
        """Workload indices whose cost carries over, with those costs."""
        if not self.enabled:
            return {}
        annotations = affected_annotations(transformation, evaluated)
        affected = _affected_tables(annotations, evaluated)
        reuse: dict[int, float] = {}
        referenced_per_query = _referenced_tables(evaluated)
        texts = None
        split_columns = None
        for i, report in enumerate(evaluated.tuning.reports):
            sql = evaluated.sql_queries[i][0]
            if not (referenced_per_query[i] & affected):
                # Irrelevant relation rule.
                reuse[i] = report.cost
                continue
            if isinstance(transformation, (RepetitionSplit, RepetitionMerge)):
                if split_columns is None:
                    split_columns = _split_element_columns(transformation,
                                                           evaluated)
                uses_base = bool(report.objects_used & affected)
                if texts is None:
                    texts = _sql_texts(evaluated)
                references = any(column in texts[i]
                                 for column in split_columns)
                if not uses_base and not references:
                    # Repetition split rule: answered from a covering
                    # index untouched by the split.
                    reuse[i] = report.cost
                    continue
            if isinstance(transformation, (UnionDistribute, UnionFactorize,
                                           TypeSplit, TypeMerge)):
                if _union_rule_holds(sql, affected, evaluated, annotations):
                    reuse[i] = report.cost
        return reuse
