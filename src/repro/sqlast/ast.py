"""SQL abstract syntax for the subset produced by XPath translation.

The sorted outer-union translation (paper Section 1.1) emits statements
of the form::

    SELECT ...  FROM t1 A, t2 B  WHERE <conjunction>
    UNION ALL
    SELECT ...
    ORDER BY <column positions>

so the AST covers: SELECT with column/NULL/literal items, implicit-join
FROM lists, WHERE trees of AND/OR/comparison/IS NULL/EXISTS, UNION ALL,
and ORDER BY on output positions. The engine consumes this AST directly;
the renderer and parser exist for round-tripping, debugging, and the
public ``Database.execute(sql_text)`` entry point.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Union

# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """``alias.column`` (alias may be empty when unambiguous)."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A string or numeric constant; ``None`` renders as NULL."""

    value: Union[str, int, float, None]

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        # bool is a subclass of int: render as 1/0, never "True"/"False"
        # (which would tokenize as identifiers). Literal(True) == Literal(1)
        # under dataclass comparison, so the round-trip still holds.
        if isinstance(self.value, bool):
            return "1" if self.value else "0"
        if isinstance(self.value, float):
            if not math.isfinite(self.value):
                raise ValueError(
                    f"cannot render non-finite SQL literal {self.value!r}")
            # repr keeps every digit, so parse_sql(str(q)) == q even for
            # values that str() would have rendered in scientific
            # notation the tokenizer used to reject.
            return repr(self.value)
        return str(self.value)


Scalar = Union[ColumnRef, Literal]


class ComparisonOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    left: Scalar
    op: ComparisonOp
    right: Scalar

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class IsNull:
    operand: ColumnRef
    negated: bool = False

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {suffix}"


@dataclass(frozen=True)
class And:
    items: tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return " AND ".join(
            f"({item})" if isinstance(item, Or) else str(item)
            for item in self.items)


@dataclass(frozen=True)
class Or:
    items: tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return " OR ".join(str(item) for item in self.items)


@dataclass(frozen=True)
class Exists:
    """A correlated EXISTS subquery (used for overflow-table probes)."""

    subquery: "Select"

    def __str__(self) -> str:
        return f"EXISTS ({self.subquery})"


BoolExpr = Union[Comparison, IsNull, And, Or, Exists]


def conjunction(items: list[BoolExpr]) -> BoolExpr | None:
    """Combine conjuncts, flattening nested ANDs; None when empty."""
    flat: list[BoolExpr] = []
    for item in items:
        if isinstance(item, And):
            flat.extend(item.items)
        else:
            flat.append(item)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def conjuncts_of(expr: BoolExpr | None) -> list[BoolExpr]:
    """The top-level conjuncts of a WHERE tree (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return list(expr.items)
    return [expr]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """``table AS alias`` in a FROM list (implicit-join style)."""

    table: str
    alias: str

    def __str__(self) -> str:
        if self.alias and self.alias != self.table:
            return f"{self.table} {self.alias}"
        return self.table

    @property
    def name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class SelectItem:
    expr: Scalar
    alias: str = ""

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class Select:
    """One SELECT block: items, FROM list, optional WHERE tree."""

    items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: BoolExpr | None = None

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(str(i) for i in self.items)]
        parts.append("FROM " + ", ".join(str(t) for t in self.from_tables))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        return " ".join(parts)

    @property
    def width(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class Query:
    """A full statement: one or more SELECTs under UNION ALL + ORDER BY.

    ``order_by`` holds 1-based output column positions (ascending), the
    form emitted by the sorted outer-union translation.
    """

    selects: tuple[Select, ...]
    order_by: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        widths = {s.width for s in self.selects}
        if len(widths) > 1:
            raise ValueError("UNION ALL branches must have equal width")

    def __str__(self) -> str:
        body = " UNION ALL ".join(str(s) for s in self.selects)
        if self.order_by:
            body += " ORDER BY " + ", ".join(str(i) for i in self.order_by)
        return body

    @property
    def width(self) -> int:
        return self.selects[0].width

    @property
    def referenced_tables(self) -> frozenset[str]:
        """Base-table names referenced anywhere (the paper's RS(Q))."""
        names: set[str] = set()

        def visit_bool(expr: BoolExpr | None) -> None:
            if isinstance(expr, (And, Or)):
                for item in expr.items:
                    visit_bool(item)
            elif isinstance(expr, Exists):
                visit_select(expr.subquery)

        def visit_select(select: Select) -> None:
            names.update(t.table for t in select.from_tables)
            visit_bool(select.where)

        for select in self.selects:
            visit_select(select)
        return frozenset(names)


def single_select(items, from_tables, where=None, order_by=()) -> Query:
    """Convenience constructor for one-block queries."""
    return Query(
        selects=(Select(tuple(items), tuple(from_tables), where),),
        order_by=tuple(order_by),
    )
