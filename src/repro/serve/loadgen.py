"""Closed- and open-loop load generation against a query service.

The two classic load models (the difference matters: closed loops
self-throttle under slowdown, open loops do not):

* **closed loop** — ``clients`` concurrent clients, each issuing its
  next query the moment the previous answer returns. Throughput is
  what the service sustains.
* **open loop** — requests arrive on a fixed Poisson schedule of
  ``rate`` requests/second regardless of completions, so a service
  slower than the arrival rate accumulates queueing latency. The
  arrival schedule is drawn from its own seeded RNG stream.

Determinism contract: which query is request #k (and, open loop, when
it arrives) is a pure function of ``(mix, seed)`` — the schedule is
drawn from one :class:`~repro.workload.MixSampler` in dispatch order,
under a lock, so thread interleaving can change completion order and
latencies but never the sequence. :attr:`LoadReport.sequence_digest`
pins that in tests and CI.

Latencies are **client-observed**: measured from the moment a request
is handed to the service (closed loop) or from its scheduled arrival
(open loop) until its answer returns — queueing inside the service's
pool is part of the number, exactly as a client would experience it.
Report percentiles are exact order statistics over those latencies;
the service's always-on histogram metric is the estimated counterpart.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from ..obs import NullTracer, Tracer, get_tracer
from ..workload import MixSampler, QueryMix
from .service import QueryService

__all__ = ["LoadGenerator", "LoadReport", "RequestRecord"]


@dataclass
class RequestRecord:
    """Outcome of one generated request (index = schedule position)."""

    index: int
    query_index: int
    xpath: str
    seconds: float = 0.0
    rows: int = 0
    cached_plan: bool = False
    error: str | None = None
    digest: str | None = None  # result-rows digest (byte-identity checks)
    retries: int = 0           # transparent retries inside the service


def _rows_digest(rows: list[tuple]) -> str:
    """Order-sensitive digest of a result set, for byte-identity checks
    between chaos and fault-free runs."""
    text = "\n".join(repr(row) for row in rows)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def _percentile(sorted_values: list[float], p: float) -> float:
    """Exact percentile (nearest-rank) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class LoadReport:
    """Result of one load-generator run."""

    mode: str
    seed: int
    clients: int
    workers: int
    rate: float | None
    wall_seconds: float = 0.0
    records: list[RequestRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if r.error is None]

    @property
    def errors(self) -> int:
        return sum(1 for r in self.records if r.error is not None)

    @property
    def qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.completed) / self.wall_seconds

    @property
    def sequence(self) -> list[int]:
        return [r.query_index for r in self.records]

    @property
    def sequence_digest(self) -> str:
        text = ",".join(str(i) for i in self.sequence)
        return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]

    @property
    def cached_plan_rate(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(1 for r in done if r.cached_plan) / len(done)

    @property
    def errors_by_type(self) -> dict[str, int]:
        """Failed-request counts keyed by exception type name."""
        counts = Counter(r.error.split(":", 1)[0]
                         for r in self.records if r.error is not None)
        return dict(sorted(counts.items()))

    @property
    def shed(self) -> int:
        """Requests fast-failed by admission control or the breaker."""
        by_type = self.errors_by_type
        return (by_type.get("ServiceOverloaded", 0)
                + by_type.get("CircuitOpenError", 0))

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def results_digest(self) -> str:
        """Digest over every successful request's result rows, keyed by
        schedule index.

        Two runs of the same seeded chaos plan agree iff the same
        requests succeeded *and* each returned byte-identical rows —
        the reproducibility acceptance check. Byte-identity against a
        fault-free run is checked per record (compare ``digest`` at
        equal ``index``), since chaos changes *which* requests fail,
        never what success returns.
        """
        parts = [f"{r.index}:{r.digest}" for r in self.records
                 if r.error is None]
        return hashlib.sha1("\n".join(parts).encode("utf-8")
                            ).hexdigest()[:16]

    def latency(self, p: float) -> float:
        """Exact p-th percentile latency over completed requests."""
        return _percentile(sorted(r.seconds for r in self.completed), p)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "clients": self.clients,
            "workers": self.workers,
            "rate": self.rate,
            "requests": len(self.records),
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 6),
            "qps": round(self.qps, 3),
            "latency_seconds": {
                "p50": round(self.latency(50), 6),
                "p95": round(self.latency(95), 6),
                "p99": round(self.latency(99), 6),
            },
            "cached_plan_rate": round(self.cached_plan_rate, 4),
            "sequence_digest": self.sequence_digest,
            "results_digest": self.results_digest,
            "shed": self.shed,
            "retries": self.total_retries,
            "errors_by_type": self.errors_by_type,
        }

    def describe(self) -> str:
        head = (f"{self.mode}-loop load: {len(self.records)} requests, "
                f"{self.errors} errors, {self.clients} clients over "
                f"{self.workers} workers")
        if self.rate is not None:
            head += f", target {self.rate:g} req/s"
        lines = [
            head,
            f"wall time: {self.wall_seconds:.3f}s   QPS: {self.qps:.1f}",
            f"latency: p50 {self.latency(50) * 1e3:.3f}ms  "
            f"p95 {self.latency(95) * 1e3:.3f}ms  "
            f"p99 {self.latency(99) * 1e3:.3f}ms",
            f"served from cached plan: {self.cached_plan_rate:.1%}   "
            f"sequence digest: {self.sequence_digest}",
            f"shed: {self.shed}   retries: {self.total_retries}   "
            f"results digest: {self.results_digest}",
        ]
        if self.errors:
            by_type = ", ".join(f"{name} x{count}" for name, count
                                in self.errors_by_type.items())
            lines.append(f"errors by type: {by_type}")
        return "\n".join(lines)


class _Schedule:
    """Lazily draws the deterministic request schedule, thread-safely.

    Records are created in sampler order under one lock, so request #k
    carries the k-th drawn query no matter which client thread claimed
    it.
    """

    def __init__(self, mix: QueryMix, seed: int,
                 limit: int | None, deadline: float | None):
        self.mix = mix
        self.sampler = MixSampler(mix, seed)
        self.limit = limit
        self.deadline = deadline
        self.records: list[RequestRecord] = []
        self._lock = threading.Lock()

    def claim(self) -> RequestRecord | None:
        """The next scheduled request, or None when the run is over."""
        if self.deadline is not None and \
                time.perf_counter() >= self.deadline:
            return None
        with self._lock:
            index = len(self.records)
            if self.limit is not None and index >= self.limit:
                return None
            query_index = self.sampler.sample_index()
            record = RequestRecord(
                index=index, query_index=query_index,
                xpath=str(self.mix.queries[query_index]))
            self.records.append(record)
        return record


class LoadGenerator:
    """Drive a :class:`QueryService` with a seeded query mix."""

    def __init__(self, service: QueryService, mix: QueryMix, seed: int,
                 mode: str = "closed", clients: int = 4,
                 rate: float = 200.0,
                 tracer: Tracer | NullTracer | None = None):
        if mode not in ("closed", "open"):
            raise ValueError(f"unknown load mode {mode!r}")
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.service = service
        self.mix = mix
        self.seed = seed
        self.mode = mode
        self.clients = clients
        self.rate = rate
        self.tracer = tracer if tracer is not None else get_tracer()

    # ------------------------------------------------------------------
    def schedule(self, requests: int) -> list[int]:
        """The deterministic query-index schedule for ``requests``."""
        return MixSampler(self.mix, self.seed).sequence(requests)

    def arrival_gaps(self, requests: int) -> list[float]:
        """Deterministic exponential inter-arrival gaps (open loop)."""
        # The arrival process gets its own RNG stream so adding or
        # removing arrival draws can never shift the query sequence.
        rng = random.Random(self.seed ^ 0x5DEECE66D)
        return [rng.expovariate(self.rate) for _ in range(requests)]

    # ------------------------------------------------------------------
    def run(self, requests: int | None = None,
            duration: float | None = None) -> LoadReport:
        """Generate load until ``requests`` are sent or ``duration``
        seconds elapse (whichever bound is given; both = first hit)."""
        if requests is None and duration is None:
            raise ValueError("give requests=, duration=, or both")
        with self.tracer.span("serve.loadgen", mode=self.mode,
                              clients=self.clients) as span:
            started = time.perf_counter()
            deadline = started + duration if duration is not None else None
            schedule = _Schedule(self.mix, self.seed, requests, deadline)
            if self.mode == "closed":
                self._run_closed(schedule)
            else:
                self._run_open(schedule, started)
            wall = time.perf_counter() - started
            span.set("requests", len(schedule.records))
            span.set("seconds", wall)
        return LoadReport(mode=self.mode, seed=self.seed,
                          clients=self.clients,
                          workers=self.service.workers,
                          rate=self.rate if self.mode == "open" else None,
                          wall_seconds=wall, records=schedule.records)

    # ------------------------------------------------------------------
    def _serve_into(self, record: RequestRecord) -> None:
        started = time.perf_counter()
        try:
            result = self.service.serve(record.xpath)
        except Exception as exc:  # noqa: BLE001 - a load test records,
            record.error = f"{type(exc).__name__}: {exc}"  # never raises
            return
        record.seconds = time.perf_counter() - started
        record.rows = len(result.rows)
        record.cached_plan = result.cached_plan
        record.digest = _rows_digest(result.rows)
        record.retries = result.retries

    def _run_closed(self, schedule: _Schedule) -> None:
        """``clients`` threads each issue the next scheduled request as
        soon as their previous one completes."""
        def client() -> None:
            while True:
                record = schedule.claim()
                if record is None:
                    return
                self._serve_into(record)

        threads = [threading.Thread(target=client, name=f"loadgen-{i}")
                   for i in range(self.clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def _run_open(self, schedule: _Schedule, started: float) -> None:
        """Dispatch requests on the fixed arrival schedule; completions
        are recorded from done-callbacks the moment they happen, so a
        long dispatch loop never inflates an early request's latency."""
        arrival_rng = random.Random(self.seed ^ 0x5DEECE66D)

        def complete(record: RequestRecord, submitted: float,
                     future) -> None:
            done_at = time.perf_counter()
            try:
                result = future.result()
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                record.error = f"{type(exc).__name__}: {exc}"
                return
            record.seconds = done_at - submitted
            record.rows = len(result.rows)
            record.cached_plan = result.cached_plan
            record.digest = _rows_digest(result.rows)
            record.retries = result.retries

        futures = []
        due = 0.0
        while True:
            due += arrival_rng.expovariate(self.rate)
            if schedule.deadline is not None and \
                    started + due >= schedule.deadline:
                break
            record = schedule.claim()
            if record is None:
                break
            now = time.perf_counter() - started
            if due > now:
                time.sleep(due - now)
            submitted = time.perf_counter()
            try:
                future = self.service.submit(record.xpath)
            except Exception as exc:  # noqa: BLE001
                record.error = f"{type(exc).__name__}: {exc}"
                continue
            future.add_done_callback(
                lambda f, r=record, t=submitted: complete(r, t, f))
            futures.append(future)
        for future in futures:
            future.exception()  # wait; errors were recorded by callbacks
