"""Shared machinery: evaluate the cost of one mapping.

Evaluating a mapping (paper Fig. 2's loop body) means:

1. derive its relational schema,
2. install stats-only tables with statistics *derived* from the
   fully-split collection (no data is ever loaded during search),
3. translate the XPath workload to SQL against that schema,
4. call the physical design tool (tuning advisor), which returns the
   recommended configuration, per-query estimated costs, and the object
   sets ``I(Q, M)``.

Evaluations are memoized by mapping signature — this implements the
paper's "carefully avoids searching duplicated mappings".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..engine import Database
from ..errors import SearchError, TranslationError
from ..mapping import (CollectedStats, MappedSchema, Mapping, derive_schema,
                       derive_table_stats)
from ..obs import NULL_TRACER, NullTracer, Tracer, get_tracer
from ..physdesign import IndexTuningAdvisor, QueryReport, TuningResult
from ..sqlast import Query
from ..translate import Translator
from ..workload import Workload
from .result import SearchCounters


@dataclass
class EvaluatedMapping:
    """One costed mapping."""

    mapping: Mapping
    schema: MappedSchema
    database: Database
    sql_queries: list[tuple[Query, float]]
    tuning: TuningResult

    @property
    def total_cost(self) -> float:
        return self.tuning.total_cost


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


def mapping_digest(mapping: Mapping) -> str:
    """A short, run-to-run-stable hash of a mapping's signature.

    ``repr`` of the signature tuple is *not* stable across interpreter
    runs (the distributions live in a frozenset whose iteration order
    depends on string hashing), so the set members are serialized
    sorted.
    """
    annotations, split_counts, distributions = mapping.signature()
    canonical = "|".join([repr(annotations), repr(split_counts),
                          ";".join(sorted(repr(d) for d in distributions))])
    return _digest(canonical)


def build_stats_only_database(schema: MappedSchema,
                              collected: CollectedStats,
                              name: str | None = None,
                              tracer: Tracer | NullTracer | None = None
                              ) -> Database:
    """A data-free database whose tables carry derived statistics.

    The default name hashes the relational schema's description, so it
    is identical across runs for identical schemas (``id()``-based
    names used to leak run-to-run nondeterminism into traces and
    reports).
    """
    if name is None:
        name = f"whatif:{_digest(schema.describe())}"
    db = Database(name=name, tracer=tracer)
    table_stats = derive_table_stats(schema, collected)
    for table in schema.to_engine_tables():
        db.register_table(table)
    for name_, stats in table_stats.items():
        db.set_table_stats(name_, stats)
    return db


class MappingEvaluator:
    """Costs mappings for one (tree, workload, stats, bound) problem."""

    def __init__(self, workload: Workload, collected: CollectedStats,
                 storage_bound: int | None = None,
                 use_cache: bool = True,
                 counters: SearchCounters | None = None,
                 tracer: Tracer | NullTracer | None = None):
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.use_cache = use_cache
        self.counters = counters or SearchCounters()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("evaluator")
        self._cache: dict[tuple, EvaluatedMapping | None] = {}
        self._partial_cache: dict[tuple, EvaluatedMapping | None] = {}

    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EvaluatedMapping | None:
        """Cost a mapping; ``None`` when the workload cannot be
        translated under it (infeasible mapping)."""
        key = mapping.signature()
        if self.use_cache and key in self._cache:
            self.counters.cache_hits += 1
            self._metrics.incr("cache_hits_exact")
            self.tracer.event("cache_hit", kind="exact")
            return self._cache[key]
        result = self._evaluate_uncached(mapping)
        if self.use_cache:
            self._cache[key] = result
        return result

    def cached(self, mapping: Mapping) -> EvaluatedMapping | None:
        """An already-computed exact evaluation, if any (no work done)."""
        if not self.use_cache:
            return None
        return self._cache.get(mapping.signature())

    def _check_schema(self, mapping: Mapping, schema: MappedSchema) -> None:
        """Debug-mode assertion: the derived schema is lossless and
        well-formed (raises :class:`~repro.errors.CheckError`)."""
        from ..check import check_schema, checks_enabled, enforce

        if not checks_enabled():
            return
        enforce(check_schema(schema), self.tracer,
                context=f"mapping:{mapping_digest(mapping)}")

    def _update_load(self, schema: MappedSchema) -> dict[str, float]:
        """Row-insert rates per table for this mapping (extension)."""
        if not self.workload.updates:
            return {}
        from .updates import update_load_for
        return update_load_for(schema, self.collected, self.workload)

    def translate_workload(self, schema: MappedSchema
                           ) -> list[tuple[Query, float]]:
        translator = Translator(schema)
        return [(translator.translate(wq.query), wq.weight)
                for wq in self.workload]

    def _evaluate_uncached(self, mapping: Mapping) -> EvaluatedMapping | None:
        self.counters.mappings_evaluated += 1
        with self.tracer.span("evaluate.exact") as span:
            schema = derive_schema(mapping)
            self._check_schema(mapping, schema)
            try:
                sql_queries = self.translate_workload(schema)
            except TranslationError:
                span.set("outcome", "translation_failed")
                self._metrics.incr("translation_failures")
                return None
            db = build_stats_only_database(
                schema, self.collected,
                name=f"whatif:{mapping_digest(mapping)}",
                tracer=self.tracer)
            advisor = IndexTuningAdvisor(db, tracer=self.tracer)
            try:
                tuning = advisor.tune(sql_queries, self.storage_bound,
                                      update_load=self._update_load(schema))
            except SearchError:
                span.set("outcome", "tuning_failed")
                self._metrics.incr("tuning_failures")
                return None
            self.counters.tuner_calls += 1
            self.counters.optimizer_calls += tuning.optimizer_calls
            span.set("outcome", "ok")
            span.set("total_cost", tuning.total_cost)
            span.set("database", db.name)
            return EvaluatedMapping(mapping=mapping, schema=schema,
                                    database=db, sql_queries=sql_queries,
                                    tuning=tuning)

    # ------------------------------------------------------------------
    def evaluate_partial(self, mapping: Mapping,
                         reuse: dict[int, float],
                         base: EvaluatedMapping | None = None
                         ) -> EvaluatedMapping | None:
        """Cost a mapping, reusing known per-query costs (Section 4.8).

        ``reuse`` maps workload indices to already-known costs; only the
        remaining queries are passed to the physical design tool, which
        is what makes cost derivation cheaper. ``base`` is the
        evaluation the reused costs came from — its per-query reports
        supply the carried-over ``objects_used`` so the synthesized
        full-workload reports stay usable by a later derivation pass.
        """
        key = (mapping.signature(),
               frozenset((i, round(cost, 6)) for i, cost in reuse.items()),
               frozenset((i, report.objects_used) for i, report
                         in self._reused_reports(reuse, base).items()))
        if self.use_cache and key in self._partial_cache:
            self.counters.cache_hits += 1
            self._metrics.incr("cache_hits_partial")
            self.tracer.event("cache_hit", kind="partial")
            return self._partial_cache[key]
        result = self._evaluate_partial_uncached(mapping, reuse, base)
        if self.use_cache:
            self._partial_cache[key] = result
        return result

    @staticmethod
    def _reused_reports(reuse: dict[int, float],
                        base: EvaluatedMapping | None
                        ) -> dict[int, QueryReport]:
        if base is None:
            return {}
        return {i: base.tuning.reports[i] for i in reuse
                if i < len(base.tuning.reports)}

    def _evaluate_partial_uncached(self, mapping: Mapping,
                                   reuse: dict[int, float],
                                   base: EvaluatedMapping | None = None
                                   ) -> EvaluatedMapping | None:
        self.counters.mappings_evaluated += 1
        with self.tracer.span("evaluate.partial",
                              reused=len(reuse)) as span:
            schema = derive_schema(mapping)
            self._check_schema(mapping, schema)
            try:
                sql_queries = self.translate_workload(schema)
            except TranslationError:
                span.set("outcome", "translation_failed")
                self._metrics.incr("translation_failures")
                return None
            db = build_stats_only_database(
                schema, self.collected,
                name=f"whatif:{mapping_digest(mapping)}",
                tracer=self.tracer)
            remaining = [(q, w) for i, (q, w) in enumerate(sql_queries)
                         if i not in reuse]
            span.set("remaining", len(remaining))
            advisor = IndexTuningAdvisor(db, tracer=self.tracer)
            try:
                tuning = advisor.tune(remaining, self.storage_bound,
                                      update_load=self._update_load(schema))
            except SearchError:
                span.set("outcome", "tuning_failed")
                self._metrics.incr("tuning_failures")
                return None
            self.counters.tuner_calls += 1
            self.counters.optimizer_calls += tuning.optimizer_calls
            self.counters.derived_query_costs += len(reuse)
            full = self._align_partial(tuning, sql_queries, reuse, base)
            span.set("outcome", "ok")
            span.set("total_cost", full.total_cost)
            span.set("database", db.name)
            return EvaluatedMapping(mapping=mapping, schema=schema,
                                    database=db, sql_queries=sql_queries,
                                    tuning=full)

    def _align_partial(self, tuning: TuningResult,
                       sql_queries: list[tuple[Query, float]],
                       reuse: dict[int, float],
                       base: EvaluatedMapping | None) -> TuningResult:
        """Rebuild a partial tuning result on full-workload positions.

        The advisor only saw the non-reused queries, so its ``reports``
        list is shorter than the workload and indexed by *remaining*
        position. Consumers (``CostDerivation.reusable_costs``,
        ``TuningResult.cost_of``) index reports by full-workload
        position; returning the advisor's result unmodified silently
        misaligned every downstream per-query lookup. Reused queries get
        a synthesized report carrying their derived cost and the object
        set of the evaluation they were derived from.
        """
        prior = self._reused_reports(reuse, base)
        remaining_reports = iter(tuning.reports)
        reports: list[QueryReport] = []
        reused_cost = 0.0
        for i, (query, weight) in enumerate(sql_queries):
            if i in reuse:
                carried = prior.get(i)
                reports.append(QueryReport(
                    query=query, weight=weight, cost=reuse[i],
                    objects_used=(carried.objects_used if carried is not None
                                  else frozenset())))
                reused_cost += weight * reuse[i]
            else:
                reports.append(next(remaining_reports))
        return TuningResult(
            configuration=tuning.configuration,
            total_cost=tuning.total_cost + reused_cost,
            reports=reports,
            optimizer_calls=tuning.optimizer_calls,
            candidates_considered=tuning.candidates_considered,
        )
