"""Validate XML instances against a schema tree.

This is a structural validator: it checks element nesting and occurrence
constraints against the content models of the schema tree, and checks
that leaf values are lexically valid for their base type. The shredder
relies on documents having been validated, so the loader runs this first
by default.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..xmlkit import Document, Element
from .nodes import UNBOUNDED, BaseType, NodeKind, SchemaNode
from .tree import SchemaTree


def _check_base_value(value: str, base_type: BaseType, path: str) -> None:
    try:
        if base_type == BaseType.INTEGER:
            int(value.strip())
        elif base_type == BaseType.DECIMAL:
            float(value.strip())
        elif base_type == BaseType.BOOLEAN:
            if value.strip() not in ("true", "false", "0", "1"):
                raise ValueError(value)
        elif base_type == BaseType.DATE:
            parts = value.strip().split("-")
            if len(parts) != 3 or not all(p.isdigit() for p in parts):
                raise ValueError(value)
    except ValueError:
        raise ValidationError(
            f"value {value!r} at {path} is not a valid {base_type.value}") from None


class Validator:
    """Validates documents/elements against a :class:`SchemaTree`."""

    def __init__(self, tree: SchemaTree):
        self.tree = tree

    def validate(self, doc: Document | Element) -> None:
        """Raise :class:`~repro.errors.ValidationError` on any violation."""
        root = doc.root if isinstance(doc, Document) else doc
        schema_root = self.tree.root
        if root.tag != schema_root.name:
            raise ValidationError(
                f"root element <{root.tag}> does not match schema root "
                f"<{schema_root.name}>")
        self._validate_element(root, schema_root, f"/{root.tag}")

    # ------------------------------------------------------------------
    def _validate_element(self, el: Element, node: SchemaNode, path: str) -> None:
        tree = self.tree
        self._validate_attributes(el, node, path)
        if tree.is_leaf_element(node):
            if el.children:
                raise ValidationError(
                    f"element at {path} must be a leaf but has child elements")
            _check_base_value(el.text, tree.leaf_base_type(node), path)
            return
        children = el.children
        particles = [p for p in tree.children(node)
                     if p.kind != NodeKind.ATTRIBUTE]
        endpoints = self._match_sequence(particles, children, 0, path)
        if len(children) not in endpoints:
            consumed = max(endpoints, default=0)
            offending = children[consumed].tag if consumed < len(children) else "(end)"
            raise ValidationError(
                f"content of {path} does not match its model near child "
                f"#{consumed + 1} <{offending}>")
        # Recurse into children against the matched TAG nodes.
        self._recurse_children(particles, children, path)

    def _recurse_children(self, particles: list[SchemaNode],
                          children: tuple[Element, ...], path: str) -> None:
        """Validate each child element against its TAG declaration.

        Element names are unambiguous within one content model in our
        schema subset, so we can dispatch by tag name.
        """
        by_name: dict[str, SchemaNode] = {}

        def collect(nodes: list[SchemaNode]) -> None:
            for particle in nodes:
                if particle.kind == NodeKind.TAG:
                    by_name.setdefault(particle.name, particle)
                else:
                    collect(self.tree.children(particle))

        collect(particles)
        for i, child in enumerate(children):
            decl = by_name.get(child.tag)
            if decl is None:
                raise ValidationError(
                    f"unexpected element <{child.tag}> inside {path}")
            self._validate_element(child, decl, f"{path}/{child.tag}[{i + 1}]")

    def _validate_attributes(self, el: Element, node: SchemaNode,
                             path: str) -> None:
        declared = {a.name: a for a in self.tree.attributes_of(node)}
        for name, value in el.attributes.items():
            decl = declared.get(name)
            if decl is None:
                raise ValidationError(
                    f"unexpected attribute {name!r} at {path}")
            _check_base_value(value, self.tree.leaf_base_type(decl),
                              f"{path}/@{name}")
        for name, decl in declared.items():
            if decl.min_occurs >= 1 and name not in el.attributes:
                raise ValidationError(
                    f"missing required attribute {name!r} at {path}")

    # ------------------------------------------------------------------
    # Content-model matching (NFA-style set-of-positions simulation)
    # ------------------------------------------------------------------
    def _match_sequence(self, particles: list[SchemaNode],
                        children: tuple[Element, ...], start: int,
                        path: str) -> set[int]:
        positions = {start}
        for particle in particles:
            next_positions: set[int] = set()
            for pos in positions:
                next_positions |= self._match_particle(particle, children, pos, path)
            positions = next_positions
            if not positions:
                break
        return positions

    def _match_particle(self, particle: SchemaNode,
                        children: tuple[Element, ...], pos: int,
                        path: str) -> set[int]:
        tree = self.tree
        kind = particle.kind
        if kind == NodeKind.SIMPLE:
            return {pos}
        if kind == NodeKind.TAG:
            if pos < len(children) and children[pos].tag == particle.name:
                return {pos + 1}
            return set()
        if kind == NodeKind.OPTION:
            child = tree.children(particle)[0]
            return {pos} | self._match_particle(child, children, pos, path)
        if kind == NodeKind.CHOICE:
            out: set[int] = set()
            for branch in tree.children(particle):
                out |= self._match_particle(branch, children, pos, path)
            return out
        if kind == NodeKind.SEQUENCE:
            return self._match_sequence(tree.children(particle), children, pos, path)
        if kind == NodeKind.REPETITION:
            child = tree.children(particle)[0]
            reachable: set[int] = set()
            frontier = {pos}
            count = 0
            limit = particle.max_occurs
            while frontier:
                if count >= particle.min_occurs:
                    reachable |= frontier
                if limit != UNBOUNDED and count >= limit:
                    break
                new_frontier: set[int] = set()
                for p in frontier:
                    new_frontier |= self._match_particle(child, children, p, path)
                # Guard against zero-width matches looping forever.
                new_frontier -= frontier if new_frontier == frontier else set()
                if new_frontier == frontier:
                    break
                frontier = new_frontier
                count += 1
            return reachable
        raise ValidationError(f"unexpected particle kind {kind}")  # pragma: no cover


def validate(doc: Document | Element, tree: SchemaTree) -> None:
    """Module-level convenience wrapper around :class:`Validator`."""
    Validator(tree).validate(doc)
