"""E0 — the Section 1.1 motivating example.

Mapping 1 = hybrid inlining; Mapping 2 = Mapping 1 plus repetition split
of the first five authors into the ``inproc`` table. The SIGMOD-papers
query runs under both mappings, each with (a) no physical design beyond
the primary keys and (b) the advisor's recommended design.

Paper numbers: tuned, Mapping 2 beats Mapping 1 by ~20x (0.25 s vs
5.1 s); untuned, the ordering *reverses* (27 s vs 21 s) — the fact that
makes logical-then-physical design suboptimal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping import derive_schema, hybrid_inlining
from ..physdesign import IndexTuningAdvisor
from ..search import MappingEvaluator
from ..translate import translate_xpath
from ..workload import Workload
from .harness import DatasetBundle, measure_workload, realize

SIGMOD_QUERY = ('/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
                '/(title | year | author)')


@dataclass
class MotivatingResult:
    mapping1_untuned: float
    mapping2_untuned: float
    mapping1_tuned: float
    mapping2_tuned: float

    @property
    def tuned_speedup(self) -> float:
        """How much Mapping 2 wins by, with physical design."""
        return self.mapping1_tuned / self.mapping2_tuned

    @property
    def ordering_reverses_untuned(self) -> bool:
        return self.mapping2_untuned >= self.mapping1_untuned

    def rows(self) -> list[list]:
        return [
            ["Mapping 1 (hybrid)", self.mapping1_untuned,
             self.mapping1_tuned],
            ["Mapping 2 (rep-split 5)", self.mapping2_untuned,
             self.mapping2_tuned],
        ]


def run_motivating_example(bundle: DatasetBundle | None = None,
                           scale: int = 4000) -> MotivatingResult:
    bundle = bundle or DatasetBundle.dblp(scale=scale)
    tree = bundle.tree
    workload = Workload.from_strings("motivating", [SIGMOD_QUERY])

    mapping1 = hybrid_inlining(tree)
    author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
    rep = tree.parent(author)
    split_count = bundle.stats.suggest_split_count(rep.node_id,
                                                   cmax=5, coverage=0.99) or 5
    mapping2 = mapping1.with_split(rep.node_id, split_count)

    results: dict[str, dict[str, float]] = {}
    evaluator = MappingEvaluator(workload, bundle.stats,
                                 bundle.storage_bound)
    measured: dict[tuple[str, str], float] = {}
    for label, mapping in (("m1", mapping1), ("m2", mapping2)):
        evaluated = evaluator.evaluate(mapping)
        assert evaluated is not None
        # Untuned: data + primary keys only.
        from ..engine import Database
        from ..mapping import load_documents
        db = Database()
        load_documents(db, evaluated.schema, bundle.docs)
        measured[(label, "untuned")] = measure_workload(
            db, evaluated.sql_queries)
        # Tuned: the advisor's recommendation, materialized.
        tuned_db = realize(evaluated.schema,
                           evaluated.tuning.configuration, bundle.docs)
        measured[(label, "tuned")] = measure_workload(
            tuned_db, evaluated.sql_queries)
    return MotivatingResult(
        mapping1_untuned=measured[("m1", "untuned")],
        mapping2_untuned=measured[("m2", "untuned")],
        mapping1_tuned=measured[("m1", "tuned")],
        mapping2_tuned=measured[("m2", "tuned")],
    )
