"""Unit tests for the workload model and generator."""

import pytest

from repro.datasets import dblp_schema, generate_dblp
from repro.errors import WorkloadError
from repro.mapping import collect_statistics
from repro.workload import (HIGH_PROJECTIONS, HIGH_SELECTIVITY,
                            LOW_PROJECTIONS, LOW_SELECTIVITY, WeightedQuery,
                            Workload, WorkloadGenerator)
from repro.xpath import evaluate, parse_xpath


@pytest.fixture(scope="module")
def bundle():
    tree = dblp_schema()
    doc = generate_dblp(600, seed=21)
    return tree, doc, collect_statistics(tree, doc)


class TestWorkloadModel:
    def test_from_strings(self):
        wl = Workload.from_strings("w", ["/a/b", "//c/d"], [1.0, 2.5])
        assert len(wl) == 2
        assert wl.total_weight() == 3.5

    def test_weights_must_be_positive(self):
        with pytest.raises(WorkloadError):
            WeightedQuery(parse_xpath("/a/b"), weight=0)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(WorkloadError):
            Workload.from_strings("w", ["/a/b"], [1.0, 2.0])

    def test_add_accepts_strings(self):
        wl = Workload("w")
        wl.add("//x/y", weight=2.0)
        assert len(wl) == 1
        assert "x" in str(wl.queries[0].query)


class TestGenerator:
    def test_names_follow_convention(self, bundle):
        tree, _, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=1)
        assert gen.generate(10).name == "LP-LS-10"
        assert gen.generate(
            20, HIGH_SELECTIVITY, HIGH_PROJECTIONS).name == "HP-HS-20"

    def test_query_count(self, bundle):
        tree, _, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=1)
        assert len(gen.generate(15)) == 15

    def test_deterministic_with_seed(self, bundle):
        tree, _, stats = bundle
        a = WorkloadGenerator(tree, stats, seed=5).generate(10)
        b = WorkloadGenerator(tree, stats, seed=5).generate(10)
        assert [str(q.query) for q in a] == [str(q.query) for q in b]

    def test_projection_counts_respect_band(self, bundle):
        tree, _, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=2)
        for wq in gen.generate(20, LOW_SELECTIVITY, LOW_PROJECTIONS):
            assert 1 <= len(wq.query.projections) <= 4
        for wq in gen.generate(20, HIGH_SELECTIVITY, HIGH_PROJECTIONS):
            assert len(wq.query.projections) >= 5

    def test_low_selectivity_queries_are_selective(self, bundle):
        tree, doc, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=3)
        workload = gen.generate(20, LOW_SELECTIVITY, LOW_PROJECTIONS)
        inproc_total = stats.instances(
            tree.find_tag_by_path(("dblp", "inproceedings")).node_id)
        selective = 0
        for wq in workload:
            if wq.query.predicate is None:
                continue
            # Measure actual context selectivity on the document.
            context_query = parse_xpath(
                str(wq.query).split("/(")[0])
            matched = len(evaluate(context_query, doc))
            if matched <= 0.25 * inproc_total:
                selective += 1
        # Most predicated queries must actually be selective.
        predicated = sum(1 for wq in workload if wq.query.predicate)
        assert predicated > 0
        assert selective >= predicated * 0.6

    def test_high_selectivity_mostly_unpredicated_or_weak(self, bundle):
        tree, _, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=4)
        workload = gen.generate(20, HIGH_SELECTIVITY, LOW_PROJECTIONS)
        strong = sum(1 for wq in workload
                     if wq.query.predicate is not None
                     and wq.query.predicate.op is not None
                     and wq.query.predicate.op.value == "=")
        assert strong <= len(workload) * 0.5

    def test_standard_suite_covers_four_bands(self, bundle):
        tree, _, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=5)
        names = [wl.name for wl in gen.standard_suite(10)]
        assert names == ["LP-LS-10", "LP-HS-10", "HP-LS-10", "HP-HS-10"]

    def test_generated_queries_evaluate_on_document(self, bundle):
        tree, doc, stats = bundle
        gen = WorkloadGenerator(tree, stats, seed=6)
        for wq in gen.generate(10):
            evaluate(wq.query, doc)  # must not raise
