"""DBLP scenario: run the joint logical+physical design advisor.

Reproduces the paper's headline workflow on the DBLP schema (Fig. 1a):
generate a synthetic DBLP corpus, define an XPath workload, run the
Greedy search from the paper, and compare the recommended design's
measured execution cost against hybrid inlining (the paper's baseline)
and against the Two-Step (logical-then-physical) approach.

Run with::

    python examples/dblp_advisor.py [n_publications]
"""

import sys

from repro import GreedySearch, TwoStepSearch, Workload
from repro.experiments import (DatasetBundle, measure_design,
                               tuned_hybrid_baseline)

WORKLOAD = [
    # The motivating example (Section 1.1).
    '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
    '/(title | year | author)',
    # Selective lookups with author access (loves repetition split).
    '/dblp/inproceedings[booktitle = "VLDB"]/(title | author)',
    '/dblp/inproceedings[year = "2000"]/(title | booktitle | author)',
    # Wide projections (the paper's HP band).
    '/dblp/inproceedings[year >= "1995"]/(title | year | cdrom | cite | '
    'author | editor | pages | booktitle | ee)',
    # Book queries and the shared author type.
    "/dblp/book/(title | publisher | author)",
    "//author",
    # Optional-element access (implicit-union candidates).
    "/dblp/inproceedings[ee]/title",
    "/dblp/inproceedings/(title | ee)",
]


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    print(f"generating synthetic DBLP ({scale} publications)...")
    bundle = DatasetBundle.dblp(scale=scale)
    workload = Workload.from_strings("dblp-example", WORKLOAD)

    print("tuning the hybrid-inlining baseline...")
    baseline = tuned_hybrid_baseline(bundle, workload)
    print(f"  baseline measured cost: {baseline.measured_cost:.1f}\n")

    print("running the paper's Greedy search...")
    greedy = GreedySearch(bundle.tree, workload, bundle.stats,
                          bundle.storage_bound).run()
    greedy_measured = measure_design(greedy, bundle)
    print(greedy.describe())
    print(f"  searched {greedy.counters.transformations_searched} "
          f"transformations in {greedy.counters.wall_time:.1f}s")
    print(f"  measured cost: {greedy_measured:.1f} "
          f"({greedy_measured / baseline.measured_cost:.2f}x baseline)\n")

    print("running the Two-Step baseline...")
    twostep = TwoStepSearch(bundle.tree, workload, bundle.stats,
                            bundle.storage_bound).run()
    twostep_measured = measure_design(twostep, bundle)
    print(f"  Two-Step measured cost: {twostep_measured:.1f} "
          f"({twostep_measured / baseline.measured_cost:.2f}x baseline)")
    print(f"\nGreedy beats Two-Step by "
          f"{twostep_measured / greedy_measured:.2f}x — the cost of "
          f"ignoring the logical/physical interplay.")


if __name__ == "__main__":
    main()
