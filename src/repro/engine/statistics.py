"""Column/table statistics and selectivity estimation.

Statistics mirror what the paper's architecture (Section 4.1) collects:

1. the range of ID values,
2. the distribution of PID (parent fan-out),
3. the value distribution of each column mapped from a base type.

Value distributions are equi-depth histograms. The same objects support
*derived* statistics: the mapping layer collects stats once on the
fully-split schema and scales/merges them for any other mapping — the
``scaled`` and ``merged`` constructors implement that derivation.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

_DEFAULT_BUCKETS = 32


def _sort_key(value):
    """Total order over mixed comparable values (NULL never appears)."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


@dataclass
class ColumnStats:
    """Statistics for one column.

    ``boundaries`` are equi-depth bucket upper bounds over the non-null
    values (ascending); each bucket holds ``bucket_rows`` rows. The
    histogram may be empty (all-null or unanalyzed column), in which case
    estimation falls back to uniformity assumptions.
    """

    row_count: int
    null_count: int = 0
    n_distinct: int = 0
    min_value: object = None
    max_value: object = None
    boundaries: list = field(default_factory=list)
    bucket_rows: float = 0.0
    avg_width: int | None = None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: list, n_buckets: int = _DEFAULT_BUCKETS,
                    is_string: bool = False) -> "ColumnStats":
        """Compute stats from actual column values (None = NULL)."""
        row_count = len(values)
        non_null = [v for v in values if v is not None]
        null_count = row_count - len(non_null)
        if not non_null:
            return cls(row_count=row_count, null_count=null_count)
        non_null.sort(key=_sort_key)
        n_distinct = len({_sort_key(v) for v in non_null})
        width = None
        if is_string:
            # Round half up: int() truncation systematically underpriced
            # short string columns in storage-bound accounting.
            mean = sum(len(str(v)) for v in non_null) / len(non_null)
            width = max(1, int(math.floor(mean + 0.5)))
        buckets = min(n_buckets, len(non_null))
        boundaries = []
        for b in range(1, buckets + 1):
            pos = min(len(non_null) - 1,
                      int(round(b * len(non_null) / buckets)) - 1)
            boundaries.append(non_null[pos])
        return cls(
            row_count=row_count,
            null_count=null_count,
            n_distinct=n_distinct,
            min_value=non_null[0],
            max_value=non_null[-1],
            boundaries=boundaries,
            bucket_rows=len(non_null) / buckets,
            avg_width=width,
        )

    def scaled(self, new_row_count: int, new_null_count: int | None = None) -> "ColumnStats":
        """Derive stats for the same value distribution at another size.

        Used when a mapping transformation changes a table's cardinality
        (e.g. horizontal partitioning) without changing which values the
        column draws from. Distinct counts are capped at the new size.
        """
        non_null_old = max(1, self.row_count - self.null_count)
        if new_null_count is None:
            ratio = self.null_count / max(1, self.row_count)
            new_null_count = int(round(new_row_count * ratio))
        new_non_null = max(0, new_row_count - new_null_count)
        return ColumnStats(
            row_count=new_row_count,
            null_count=new_null_count,
            n_distinct=min(self.n_distinct, new_non_null),
            min_value=self.min_value,
            max_value=self.max_value,
            boundaries=list(self.boundaries),
            bucket_rows=(self.bucket_rows * new_non_null / non_null_old
                         if self.boundaries else 0.0),
            avg_width=self.avg_width,
        )

    @classmethod
    def merged(cls, parts: list["ColumnStats"],
               n_buckets: int = _DEFAULT_BUCKETS) -> "ColumnStats":
        """Combine stats of the same logical column split across tables.

        The parts are treated as a *disjoint partition* of the merged
        rows — the shape produced by repetition splits, type splits, and
        union distributions — so distinct counts add (capped at the
        non-null rows), widths average weighted by each part's non-null
        row count, and the histogram is re-bucketed into equi-depth
        buckets via quantiles over the parts' (boundary, mass) points.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            return cls(row_count=0)
        row_count = sum(p.row_count for p in parts)
        null_count = sum(p.null_count for p in parts)
        non_null = row_count - null_count
        with_min = [p for p in parts if p.min_value is not None]
        # Row-weighted width: an unweighted mean let a tiny overflow
        # table drag a large inline column's width around (and vice
        # versa). Weight by non-null rows, rounding half up.
        weighted = [(p.avg_width, max(0, p.row_count - p.null_count))
                    for p in parts if p.avg_width is not None]
        width_mass = sum(w for _, w in weighted)
        avg_width = (max(1, int(math.floor(
            sum(a * w for a, w in weighted) / width_mass + 0.5)))
            if width_mass else None)
        # Each part boundary stands for ~bucket_rows rows of its part;
        # re-bucketing via quantiles over that weighted point set keeps
        # the merged histogram equi-depth even when the parts differ in
        # size (concatenating boundaries did not).
        points = sorted(
            ((_sort_key(b), b, p.bucket_rows)
             for p in parts for b in p.boundaries),
            key=lambda point: point[0])
        boundaries: list = []
        bucket_rows = 0.0
        if points:
            mass = sum(w for _, _, w in points)
            buckets = min(n_buckets, len(points))
            if mass > 0:
                cumulative = 0.0
                filled = 0
                for _, value, weight in points:
                    cumulative += weight
                    while (filled < buckets and
                           cumulative >= (filled + 1) * mass / buckets - 1e-9):
                        boundaries.append(value)
                        filled += 1
                while filled < buckets:  # float residue on the last bucket
                    boundaries.append(points[-1][1])
                    filled += 1
            else:  # all-zero masses (degenerate scaled parts)
                boundaries = [value for _, value, _ in points]
            bucket_rows = non_null / len(boundaries) if boundaries else 0.0
        return cls(
            row_count=row_count,
            null_count=null_count,
            n_distinct=min(non_null, sum(p.n_distinct for p in parts)),
            min_value=(min((p.min_value for p in with_min), key=_sort_key)
                       if with_min else None),
            max_value=(max((p.max_value for p in with_min), key=_sort_key)
                       if with_min else None),
            boundaries=boundaries,
            bucket_rows=bucket_rows,
            avg_width=avg_width,
        )

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def non_null_fraction(self) -> float:
        return 1.0 - self.null_fraction

    def eq_selectivity(self, value) -> float:
        """Fraction of rows equal to ``value``."""
        if self.row_count == 0 or value is None:
            return 0.0
        if self.n_distinct <= 0:
            return 0.0
        if self.min_value is not None:
            key = _sort_key(value)
            if key < _sort_key(self.min_value) or key > _sort_key(self.max_value):
                return 0.0
        return self.non_null_fraction / self.n_distinct

    def range_selectivity(self, op: str, value) -> float:
        """Fraction of rows satisfying ``column <op> value``.

        ``op`` is one of ``<``, ``<=``, ``>``, ``>=``.
        """
        if self.row_count == 0 or value is None:
            return 0.0
        le_fraction = self._fraction_le(value)
        eq = self.eq_selectivity(value)
        # All results are capped at the non-null fraction: the uniform
        # eq-estimate can otherwise exceed the histogram's residual mass
        # (e.g. >= min on a skewed column), breaking monotonicity.
        cap = self.non_null_fraction
        if op == "<=":
            return _clamp(le_fraction, hi=cap)
        if op == "<":
            return _clamp(le_fraction - eq, hi=cap)
        if op == ">":
            return _clamp(self.non_null_fraction - le_fraction, hi=cap)
        if op == ">=":
            return _clamp(self.non_null_fraction - le_fraction + eq, hi=cap)
        raise ValueError(f"not a range operator: {op!r}")

    def _fraction_le(self, value) -> float:
        """Estimated fraction of all rows with column <= value."""
        if not self.boundaries:
            return self.non_null_fraction / 2
        key = _sort_key(value)
        keys = [_sort_key(b) for b in self.boundaries]
        if key < keys[0]:
            return 0.0
        if key >= keys[-1]:
            return self.non_null_fraction
        bucket = bisect_left(keys, key)
        full = bisect_right(keys, key)
        covered = full  # buckets entirely <= value
        # Linear interpolation inside the partially covered bucket when
        # both bounds are numeric.
        partial = 0.0
        if bucket == full and bucket < len(keys):
            lo = self.boundaries[bucket - 1] if bucket > 0 else self.min_value
            hi = self.boundaries[bucket]
            if isinstance(lo, (int, float)) and isinstance(hi, (int, float)) \
                    and not isinstance(lo, bool) and hi > lo \
                    and isinstance(value, (int, float)):
                partial = (value - lo) / (hi - lo)
            else:
                partial = 0.5
        non_null = max(1, self.row_count - self.null_count)
        rows = (covered + partial) * self.bucket_rows
        return _clamp(rows / self.row_count if self.row_count else 0.0,
                      hi=self.non_null_fraction)


def _clamp(x: float, lo: float = 0.0, hi: float = 1.0) -> float:
    return max(lo, min(hi, x))


@dataclass
class TableStats:
    """Per-table statistics: row count plus per-column stats."""

    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


class StatisticsCatalog:
    """All statistics known to a database, keyed by table name."""

    def __init__(self):
        self.tables: dict[str, TableStats] = {}

    def set_table(self, name: str, stats: TableStats) -> None:
        self.tables[name] = stats

    def table(self, name: str) -> TableStats | None:
        return self.tables.get(name)

    def column(self, table: str, column: str) -> ColumnStats | None:
        table_stats = self.tables.get(table)
        if table_stats is None:
            return None
        return table_stats.column(column)

    def analyze_table(self, table, n_buckets: int = _DEFAULT_BUCKETS) -> TableStats:
        """Compute statistics from a materialized table's rows."""
        from .types import SQLType  # local import to avoid a cycle

        rows = table.rows or []
        stats = TableStats(row_count=len(rows))
        for pos, column in enumerate(table.columns):
            values = [row[pos] for row in rows]
            stats.columns[column.name] = ColumnStats.from_values(
                values, n_buckets=n_buckets,
                is_string=(column.sql_type == SQLType.VARCHAR))
        self.tables[table.name] = stats
        return stats
