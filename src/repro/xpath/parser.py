"""Recursive-descent parser for the XPath subset.

Grammar::

    query      := abspath ( "/" "(" relpath ("|" relpath)* ")" )?
    abspath    := (("/" | "//") step)+
    step       := NAME predicate?
    predicate  := "[" relpath ( op literal )? "]"
    relpath    := "//"? step (("/" | "//") step)*
    op         := "=" | "!=" | "<" | "<=" | ">" | ">="
    literal    := '"' chars '"' | "'" chars "'" | number

At most one predicate is allowed per query (the paper's queries have a
single selection path); more than one raises ``XPathError``.
"""

from __future__ import annotations

import re

from ..errors import XPathError
from .ast import Axis, CompareOp, Predicate, Step, XPathQuery

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_NUMBER_RE = re.compile(r"-?\d+(\.\d+)?")
# Longest-match first so "<=" wins over "<".
_OPS = ["!=", "<=", ">=", "=", "<", ">"]


class _Cursor:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise XPathError(
                f"expected {token!r} at position {self.pos} in {self.text!r}")

    def name(self) -> str:
        """An element name, or ``@name`` for an attribute step."""
        self.skip_ws()
        prefix = ""
        if self.pos < len(self.text) and self.text[self.pos] == "@":
            prefix = "@"
            self.pos += 1
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise XPathError(
                f"expected a name at position {self.pos} in {self.text!r}")
        self.pos = match.end()
        return prefix + match.group(0)


def _parse_axis(cursor: _Cursor, default: Axis | None = None) -> Axis | None:
    if cursor.take("//"):
        return Axis.DESCENDANT
    if cursor.take("/"):
        return Axis.CHILD
    return default


def _parse_relpath(cursor: _Cursor) -> tuple[Step, ...]:
    axis = _parse_axis(cursor, default=Axis.CHILD)
    steps = [Step(axis, cursor.name())]
    while True:
        axis = _parse_axis(cursor)
        if axis is None:
            return tuple(steps)
        steps.append(Step(axis, cursor.name()))


def _parse_literal(cursor: _Cursor) -> str:
    cursor.skip_ws()
    text = cursor.text
    if cursor.pos < len(text) and text[cursor.pos] in "\"'":
        quote = text[cursor.pos]
        end = text.find(quote, cursor.pos + 1)
        if end < 0:
            raise XPathError(f"unterminated string literal in {text!r}")
        value = text[cursor.pos + 1:end]
        cursor.pos = end + 1
        return value
    match = _NUMBER_RE.match(text, cursor.pos)
    if match:
        cursor.pos = match.end()
        return match.group(0)
    raise XPathError(f"expected a literal at position {cursor.pos} in {text!r}")


def _parse_predicate(cursor: _Cursor) -> Predicate:
    cursor.expect("[")
    path = _parse_relpath(cursor)
    cursor.skip_ws()
    op = None
    value = None
    for candidate in _OPS:
        if cursor.take(candidate):
            op = CompareOp(candidate)
            value = _parse_literal(cursor)
            break
    cursor.expect("]")
    return Predicate(path=path, op=op, value=value)


def parse_xpath(text: str) -> XPathQuery:
    """Parse an XPath expression into an :class:`XPathQuery`."""
    cursor = _Cursor(text)
    steps: list[Step] = []
    predicate: Predicate | None = None
    predicate_step: int | None = None
    projections: tuple[tuple[Step, ...], ...] = ()

    axis = _parse_axis(cursor)
    if axis is None:
        raise XPathError(f"query must start with '/' or '//': {text!r}")
    while True:
        # A '(' after the axis starts the projection group.
        if cursor.peek("("):
            cursor.expect("(")
            paths = [_parse_relpath(cursor)]
            while cursor.take("|"):
                paths.append(_parse_relpath(cursor))
            cursor.expect(")")
            projections = tuple(paths)
            if not cursor.at_end():
                raise XPathError(f"content after projection group in {text!r}")
            break
        steps.append(Step(axis, cursor.name()))
        if cursor.peek("["):
            if predicate is not None:
                raise XPathError(
                    f"only one predicate per query is supported: {text!r}")
            predicate = _parse_predicate(cursor)
            predicate_step = len(steps) - 1
        next_axis = _parse_axis(cursor)
        if next_axis is None:
            if not cursor.at_end():
                raise XPathError(
                    f"unexpected trailing content at position {cursor.pos} "
                    f"in {text!r}")
            break
        axis = next_axis
    if not steps:
        raise XPathError(f"empty context path in {text!r}")
    return XPathQuery(
        steps=tuple(steps),
        predicate=predicate,
        predicate_step=predicate_step,
        projections=projections,
    )
