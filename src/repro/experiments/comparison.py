"""Figs. 4, 5, 6 — Greedy vs. Naive-Greedy vs. Two-Step.

One run per (workload, algorithm) yields all three figures' data:

* Fig. 4: workload execution cost of the recommended design, measured on
  loaded data and normalized to the tuned hybrid-inlining baseline;
* Fig. 5: advisor running time, normalized to Two-Step;
* Fig. 6: number of transformations searched.

Mirroring the paper, Naive-Greedy is only run on the smaller workloads
(it "did not stop after five days" on the 20-query DBLP workloads; here
it is merely orders of magnitude slower, so large-workload naive runs
are skipped by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import NULL_TRACER, Tracer, summarize
from ..search import DesignResult, GreedySearch, NaiveGreedySearch, TwoStepSearch
from ..workload import Workload
from .harness import (Baseline, DatasetBundle, measure_design,
                      tuned_hybrid_baseline)
from .reporting import format_series

ALGORITHMS = ("greedy", "naive-greedy", "two-step")


@dataclass
class AlgorithmRun:
    """One (algorithm, workload) cell of the comparison."""

    algorithm: str
    workload_name: str
    result: DesignResult
    measured_cost: float
    normalized_cost: float     # vs. tuned hybrid inlining (Fig. 4)
    wall_time: float
    transformations: int
    trace_summary: str = ""    # per-phase breakdown (when traced)


@dataclass
class ComparisonResult:
    bundle_name: str
    runs: list[AlgorithmRun] = field(default_factory=list)
    baselines: dict[str, Baseline] = field(default_factory=dict)

    def by_algorithm(self, algorithm: str) -> dict[str, AlgorithmRun]:
        return {r.workload_name: r for r in self.runs
                if r.algorithm == algorithm}

    # -- the three figures -------------------------------------------------
    def fig4(self) -> str:
        series = {}
        for algorithm in ALGORITHMS:
            cells = self.by_algorithm(algorithm)
            if cells:
                series[algorithm] = {
                    name: run.normalized_cost
                    for name, run in cells.items()}
        return format_series(
            f"Fig. 4 ({self.bundle_name}) — execution cost, normalized to "
            f"hybrid inlining", "workload", series)

    def fig5(self) -> str:
        twostep = self.by_algorithm("two-step")
        series = {}
        for algorithm in ALGORITHMS:
            cells = self.by_algorithm(algorithm)
            values = {}
            for name, run in cells.items():
                reference = twostep.get(name)
                if reference and reference.wall_time > 0:
                    values[name] = run.wall_time / reference.wall_time
            if values:
                series[algorithm] = values
        return format_series(
            f"Fig. 5 ({self.bundle_name}) — search time, normalized to "
            f"Two-Step", "workload", series)

    def fig6(self) -> str:
        series = {}
        for algorithm in ("greedy", "naive-greedy"):
            cells = self.by_algorithm(algorithm)
            if cells:
                series[algorithm] = {
                    name: float(run.transformations)
                    for name, run in cells.items()}
        return format_series(
            f"Fig. 6 ({self.bundle_name}) — transformations searched",
            "workload", series)

    def trace_report(self) -> str:
        """Per-run span summaries (empty unless run with ``trace=True``).

        This is what turns the Fig. 5 wall-time ratios into auditable
        numbers: each run's advisor calls, optimizer calls, cache hit
        ratios, and per-phase times, side by side.
        """
        blocks = [
            f"trace — {self.bundle_name} / {run.algorithm} / "
            f"{run.workload_name}\n{run.trace_summary}"
            for run in self.runs if run.trace_summary]
        return "\n\n".join(blocks)


def _make_search(algorithm: str, bundle: DatasetBundle,
                 workload: Workload, naive_max_rounds: int,
                 tracer=None):
    common = dict(storage_bound=bundle.storage_bound, tracer=tracer)
    if algorithm == "greedy":
        return GreedySearch(bundle.tree, workload, bundle.stats, **common)
    if algorithm == "naive-greedy":
        return NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                                 max_rounds=naive_max_rounds, **common)
    if algorithm == "two-step":
        return TwoStepSearch(bundle.tree, workload, bundle.stats, **common)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def compare_algorithms(bundle: DatasetBundle, workloads: list[Workload],
                       algorithms: tuple[str, ...] = ALGORITHMS,
                       naive_max_queries: int = 10,
                       naive_max_rounds: int = 6,
                       trace: bool = False,
                       backend: str = "engine") -> ComparisonResult:
    """Run the algorithms on each workload and measure their designs.

    With ``trace=True`` each run gets its own :class:`repro.obs.Tracer`
    and the run's aggregated span summary is kept on
    :attr:`AlgorithmRun.trace_summary` (see
    :meth:`ComparisonResult.trace_report`).

    ``backend`` selects what the Fig. 4 costs are measured on: the
    deterministic engine (default) or wall-clock SQLite seconds
    (``"sqlite"``). Either way the numbers are normalized to the tuned
    hybrid baseline measured on the *same* backend, so the figures stay
    comparable.
    """
    out = ComparisonResult(bundle_name=bundle.name)
    for workload in workloads:
        baseline = tuned_hybrid_baseline(bundle, workload, backend=backend)
        out.baselines[workload.name] = baseline
        for algorithm in algorithms:
            if algorithm == "naive-greedy" and \
                    len(workload) > naive_max_queries:
                continue  # the paper could not finish these either
            tracer = Tracer() if trace else NULL_TRACER
            search = _make_search(algorithm, bundle, workload,
                                  naive_max_rounds, tracer=tracer)
            result = search.run()
            measured = measure_design(result, bundle, backend=backend)
            out.runs.append(AlgorithmRun(
                algorithm=algorithm,
                workload_name=workload.name,
                result=result,
                measured_cost=measured,
                normalized_cost=measured / max(baseline.measured_cost, 1e-9),
                wall_time=result.counters.wall_time,
                transformations=result.counters.transformations_searched,
                trace_summary=summarize(tracer) if trace else "",
            ))
    return out
