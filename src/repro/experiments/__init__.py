"""Experiment drivers: one per paper table/figure."""

from .ablations import (Fig7Row, Fig8Row, Fig9Row, fig7_table, fig8_tables,
                        fig9_tables, run_fig7, run_fig8, run_fig9)
from .comparison import (ALGORITHMS, AlgorithmRun, ComparisonResult,
                         compare_algorithms)
from .harness import (Baseline, DatasetBundle, measure_design,
                      measure_workload, measure_workload_sqlite, realize,
                      tuned_hybrid_baseline)
from .motivating import MotivatingResult, run_motivating_example
from .reporting import format_series, format_table
from .split_count import (SplitCountPoint, SplitCountSweep,
                          run_split_count_sweep)
from .table1 import (HEADERS as TABLE1_HEADERS, DatasetCharacteristics,
                     characterize, run_table1)

__all__ = [
    "DatasetBundle",
    "Baseline",
    "realize",
    "measure_workload",
    "measure_workload_sqlite",
    "measure_design",
    "tuned_hybrid_baseline",
    "run_motivating_example",
    "MotivatingResult",
    "format_table",
    "format_series",
    "characterize",
    "run_table1",
    "TABLE1_HEADERS",
    "DatasetCharacteristics",
    "compare_algorithms",
    "ComparisonResult",
    "AlgorithmRun",
    "ALGORITHMS",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "fig7_table",
    "fig8_tables",
    "fig9_tables",
    "Fig7Row",
    "Fig8Row",
    "Fig9Row",
    "run_split_count_sweep",
    "SplitCountSweep",
    "SplitCountPoint",
]
