"""SQL AST, renderer, and parser for the translated-query subset."""

from .ast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp, Exists,
                  IsNull, Literal, Or, Query, Scalar, Select, SelectItem,
                  TableRef, conjunction, conjuncts_of, single_select)
from .parser import parse_sql
from .render import render, render_select

__all__ = [
    "And",
    "BoolExpr",
    "ColumnRef",
    "Comparison",
    "ComparisonOp",
    "Exists",
    "IsNull",
    "Literal",
    "Or",
    "Query",
    "Scalar",
    "Select",
    "SelectItem",
    "TableRef",
    "conjunction",
    "conjuncts_of",
    "single_select",
    "parse_sql",
    "render",
    "render_select",
]
