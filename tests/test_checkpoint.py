"""Checkpoint/resume: a killed search resumes to an identical result.

The kill is an injected *fatal* fault armed at a deterministic
evaluation count (``evaluate:1:fatal:0:N``) — no subprocesses, no
timing — so these tests replay exactly. All searches here pin
``jobs=1``: in a process pool a worker-raised fatal fault is an
infrastructure error (the pool degrades and the batch completes), so
the deterministic mid-search kill needs the serial path. The
serial/parallel identity is proven in test_parallel.py, and
``scripts/resume_smoke.py`` covers the real-SIGKILL variant in CI.
"""

import pytest

from repro.errors import CheckpointError, InjectedFault
from repro.experiments import DatasetBundle
from repro.resilience import NULL_PLAN, CheckpointStore, install_fault_plan
from repro.search import GreedySearch, NaiveGreedySearch, mapping_digest


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    install_fault_plan(NULL_PLAN)
    yield
    install_fault_plan(NULL_PLAN)


@pytest.fixture(scope="module")
def problems():
    out = {}
    for name in ("dblp", "movie"):
        maker = getattr(DatasetBundle, name)
        bundle = maker(scale=150, seed=11)
        workload = bundle.workload_generator(seed=5).generate(4)
        out[name] = (bundle, workload)
    return out


def _greedy(problem, **kwargs):
    bundle, workload = problem
    return GreedySearch(bundle.tree, workload, bundle.stats,
                        bundle.storage_bound, jobs=1, **kwargs)


def _naive(problem, **kwargs):
    bundle, workload = problem
    return NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                             storage_bound=bundle.storage_bound, jobs=1,
                             max_rounds=2, **kwargs)


@pytest.fixture(scope="module")
def baselines(problems):
    return {name: _greedy(problem).run()
            for name, problem in problems.items()}


def _fingerprint(result):
    return (mapping_digest(result.mapping), tuple(result.applied),
            result.estimated_cost, result.configuration.describe())


class TestKillAndResume:
    @pytest.mark.parametrize("dataset", ["dblp", "movie"])
    def test_greedy_resumes_to_identical_result(self, problems, baselines,
                                                dataset, tmp_path):
        baseline = baselines[dataset]
        evaluations = baseline.counters.mappings_evaluated
        assert evaluations >= 4, "problem too small to kill mid-search"
        kill_at = max(3, evaluations // 2)
        install_fault_plan(f"evaluate:1:fatal:0:{kill_at}")
        with pytest.raises(InjectedFault):
            _greedy(problems[dataset], checkpoint=tmp_path).run()
        assert CheckpointStore(tmp_path).load() is not None
        install_fault_plan(NULL_PLAN)
        resumed = _greedy(problems[dataset], checkpoint=tmp_path,
                          resume=True).run()
        assert _fingerprint(resumed) == _fingerprint(baseline)
        # The snapshot carries the evaluator memo and the counters, so
        # resume replays only the partial round: the logical evaluation
        # count lands exactly on the uninterrupted run's.
        assert resumed.counters.mappings_evaluated == evaluations

    def test_naive_resumes_to_identical_result(self, problems, tmp_path):
        baseline = _naive(problems["dblp"]).run()
        kill_at = max(3, baseline.counters.mappings_evaluated // 2)
        install_fault_plan(f"evaluate:1:fatal:0:{kill_at}")
        with pytest.raises(InjectedFault):
            _naive(problems["dblp"], checkpoint=tmp_path).run()
        install_fault_plan(NULL_PLAN)
        resumed = _naive(problems["dblp"], checkpoint=tmp_path,
                         resume=True).run()
        assert _fingerprint(resumed) == _fingerprint(baseline)

    def test_resume_without_checkpoint_starts_fresh(self, problems,
                                                    baselines, tmp_path):
        result = _greedy(problems["dblp"], checkpoint=tmp_path,
                         resume=True).run()
        assert _fingerprint(result) == _fingerprint(baselines["dblp"])
        assert result.counters.checkpoints_written >= 1


class TestCheckpointValidation:
    def test_wrong_problem_is_rejected_loudly(self, problems, tmp_path):
        bundle, workload = problems["dblp"]
        install_fault_plan("evaluate:1:fatal:0:3")
        with pytest.raises(InjectedFault):
            _greedy(problems["dblp"], checkpoint=tmp_path).run()
        install_fault_plan(NULL_PLAN)
        other_workload = bundle.workload_generator(seed=99).generate(4)
        with pytest.raises(CheckpointError):
            _greedy((bundle, other_workload), checkpoint=tmp_path,
                    resume=True).run()

    def test_wrong_algorithm_is_rejected_loudly(self, problems, tmp_path):
        install_fault_plan("evaluate:1:fatal:0:3")
        with pytest.raises(InjectedFault):
            _greedy(problems["dblp"], checkpoint=tmp_path).run()
        install_fault_plan(NULL_PLAN)
        with pytest.raises(CheckpointError):
            _naive(problems["dblp"], checkpoint=tmp_path, resume=True).run()

    def test_corrupt_checkpoint_degrades_to_fresh_start(self, problems,
                                                        baselines,
                                                        tmp_path):
        store = CheckpointStore(tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_bytes(b"\x80\x04 torn before the payload ended")
        result = _greedy(problems["dblp"], checkpoint=tmp_path,
                         resume=True).run()
        assert _fingerprint(result) == _fingerprint(baselines["dblp"])


class TestCheckpointWriteFaults:
    def test_failed_writes_never_hurt_the_search(self, problems,
                                                 baselines, tmp_path):
        install_fault_plan("checkpoint.write:1:transient")
        result = _greedy(problems["dblp"], checkpoint=tmp_path).run()
        assert _fingerprint(result) == _fingerprint(baselines["dblp"])
        assert result.counters.checkpoints_written == 0
        assert CheckpointStore(tmp_path).load() is None

    def test_torn_writes_load_as_absent(self, problems, baselines,
                                        tmp_path):
        install_fault_plan("checkpoint.write:1:torn")
        result = _greedy(problems["dblp"], checkpoint=tmp_path).run()
        assert _fingerprint(result) == _fingerprint(baselines["dblp"])
        install_fault_plan(NULL_PLAN)
        assert CheckpointStore(tmp_path).load() is None
        # ... so a resume against the torn file simply starts fresh.
        resumed = _greedy(problems["dblp"], checkpoint=tmp_path,
                          resume=True).run()
        assert _fingerprint(resumed) == _fingerprint(baselines["dblp"])

    def test_checkpoint_every_thins_snapshots(self, problems, baselines,
                                              tmp_path):
        dense = _greedy(problems["dblp"], checkpoint=tmp_path / "a").run()
        sparse = _greedy(problems["dblp"], checkpoint=tmp_path / "b",
                         checkpoint_every=3).run()
        assert _fingerprint(dense) == _fingerprint(baselines["dblp"])
        assert _fingerprint(sparse) == _fingerprint(baselines["dblp"])
        assert 1 <= sparse.counters.checkpoints_written \
            <= dense.counters.checkpoints_written
