"""Shared machinery: evaluate the cost of one (or many) mappings.

Evaluating a mapping (paper Fig. 2's loop body) means:

1. derive its relational schema,
2. install stats-only tables with statistics *derived* from the
   fully-split collection (no data is ever loaded during search),
3. translate the XPath workload to SQL against that schema,
4. call the physical design tool (tuning advisor), which returns the
   recommended configuration, per-query estimated costs, and the object
   sets ``I(Q, M)``.

Evaluations are memoized at three layers:

* **in-memory memo** per evaluator, keyed by mapping signature — this
  implements the paper's "carefully avoids searching duplicated
  mappings" (*cold* cache hits);
* **persistent store** (:class:`repro.search.cache.EvaluationCache`,
  optional) keyed by ``(mapping digest, workload digest, stats digest,
  storage bound)`` — repeated runs of the same problem skip re-costing
  entirely (*warm* hits);
* the advisor's **what-if cost cache** is shared across all advisor
  invocations of one evaluator, so a partial evaluation followed by an
  exact re-check of the same mapping does not re-pay optimizer calls
  for unchanged (query, configuration) pairs.

Independent candidates are costed concurrently by
:meth:`MappingEvaluator.evaluate_many` /
:meth:`~MappingEvaluator.evaluate_partial_many` — see
``repro.search.parallel`` and docs/performance.md. The serial and
parallel paths produce identical results by construction.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from ..engine import Database
from ..errors import SearchError, TranslationError
from ..mapping import (CollectedStats, MappedSchema, Mapping, derive_schema,
                       derive_table_stats)
from ..obs import NullTracer, Tracer, get_tracer
from ..physdesign import IndexTuningAdvisor, QueryReport, TuningResult
from ..resilience import (RETRYABLE_CATEGORIES, RetryPolicy,
                          active_fault_plan, classify)
from ..sqlast import Query
from ..translate import Translator
from ..workload import Workload
from .cache import CacheKey, EvaluationCache, problem_digest
from .parallel import (EvaluationPool, WorkerOutput, graft_spans,
                       merge_metrics, resolve_jobs)
from .result import SearchCounters


@dataclass
class EvaluatedMapping:
    """One costed mapping."""

    mapping: Mapping
    schema: MappedSchema
    database: Database
    sql_queries: list[tuple[Query, float]]
    tuning: TuningResult

    @property
    def total_cost(self) -> float:
        return self.tuning.total_cost


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


def mapping_digest(mapping: Mapping) -> str:
    """A short, run-to-run-stable hash of a mapping's signature.

    ``repr`` of the signature tuple is *not* stable across interpreter
    runs (the distributions live in a frozenset whose iteration order
    depends on string hashing), so the set members are serialized
    sorted.
    """
    annotations, split_counts, distributions = mapping.signature()
    canonical = "|".join([repr(annotations), repr(split_counts),
                          ";".join(sorted(repr(d) for d in distributions))])
    return _digest(canonical)


def build_stats_only_database(schema: MappedSchema,
                              collected: CollectedStats,
                              name: str | None = None,
                              tracer: Tracer | NullTracer | None = None
                              ) -> Database:
    """A data-free database whose tables carry derived statistics.

    The default name hashes the relational schema's description, so it
    is identical across runs for identical schemas (``id()``-based
    names used to leak run-to-run nondeterminism into traces and
    reports).
    """
    if name is None:
        name = f"whatif:{_digest(schema.describe())}"
    db = Database(name=name, tracer=tracer)
    table_stats = derive_table_stats(schema, collected)
    for table in schema.to_engine_tables():
        db.register_table(table)
    for name_, stats in table_stats.items():
        db.set_table_stats(name_, stats)
    return db


class _Deferred:
    """Placeholder for a batch slot resolved after computation."""

    __slots__ = ("kind", "key")

    def __init__(self, kind: str, key: tuple):
        self.kind = kind
        self.key = key


class MappingEvaluator:
    """Costs mappings for one (tree, workload, stats, bound) problem."""

    def __init__(self, workload: Workload, collected: CollectedStats,
                 storage_bound: int | None = None,
                 use_cache: bool = True,
                 counters: SearchCounters | None = None,
                 tracer: Tracer | NullTracer | None = None,
                 jobs: int | None = None,
                 cache: EvaluationCache | None = None,
                 policy: RetryPolicy | None = None):
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.use_cache = use_cache
        self.counters = counters or SearchCounters()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("evaluator")
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self._cache: dict[tuple, EvaluatedMapping | None] = {}
        self._partial_cache: dict[tuple, EvaluatedMapping | None] = {}
        # What-if cost cache shared across every advisor invocation of
        # this evaluator (keys carry the what-if database name, which is
        # derived from the mapping digest, so entries never collide
        # across mappings).
        self._advisor_cost_cache: dict = {}
        self._pool: EvaluationPool | None = None
        self._problem: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle / plumbing
    # ------------------------------------------------------------------
    def rebind_tracer(self, tracer: Tracer | NullTracer) -> None:
        """Point instrumentation at another tracer (pool workers reuse
        one evaluator across tasks, each with a fresh tracer)."""
        self.tracer = tracer
        self._metrics = tracer.metrics("evaluator")

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "MappingEvaluator":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _ensure_pool(self) -> EvaluationPool:
        if self._pool is None:
            self._pool = EvaluationPool(
                self.workload, self.collected, self.storage_bound,
                jobs=self.jobs, tracing=bool(self.tracer.enabled),
                policy=self.policy, counters=self.counters,
                tracer=self.tracer)
        return self._pool

    def _problem_digest(self) -> str:
        if self._problem is None:
            self._problem = problem_digest(self.workload, self.collected,
                                           self.storage_bound)
        return self._problem

    # ------------------------------------------------------------------
    # Single-mapping API
    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EvaluatedMapping | None:
        """Cost a mapping; ``None`` when the workload cannot be
        translated under it (infeasible mapping)."""
        return self._evaluate_batch([("exact", mapping, None, None)])[0]

    def evaluate_partial(self, mapping: Mapping,
                         reuse: dict[int, float],
                         base: EvaluatedMapping | None = None
                         ) -> EvaluatedMapping | None:
        """Cost a mapping, reusing known per-query costs (Section 4.8).

        ``reuse`` maps workload indices to already-known costs; only the
        remaining queries are passed to the physical design tool, which
        is what makes cost derivation cheaper. ``base`` is the
        evaluation the reused costs came from — its per-query reports
        supply the carried-over ``objects_used`` so the synthesized
        full-workload reports stay usable by a later derivation pass.
        """
        carried = self._carried_objects(reuse, base)
        return self._evaluate_batch(
            [("partial", mapping, dict(reuse), carried)])[0]

    def cached(self, mapping: Mapping) -> EvaluatedMapping | None:
        """An already-computed exact evaluation, if any (no work done)."""
        if not self.use_cache:
            return None
        return self._cache.get(mapping.signature())

    # ------------------------------------------------------------------
    # Batch API (the parallel fan-out)
    # ------------------------------------------------------------------
    def evaluate_many(self, mappings: list[Mapping]
                      ) -> list[EvaluatedMapping | None]:
        """Cost several independent mappings as one batch.

        Results align with the input list. Cache lookups (memory and
        persistent) happen up front; only genuinely new mappings are
        evaluated — concurrently when ``jobs > 1``.
        """
        return self._evaluate_batch(
            [("exact", mapping, None, None) for mapping in mappings])

    def evaluate_partial_many(
            self, items: list[tuple[Mapping, dict[int, float],
                                    EvaluatedMapping | None]]
            ) -> list[EvaluatedMapping | None]:
        """Batch form of :meth:`evaluate_partial`."""
        return self._evaluate_batch(
            [("partial", mapping, dict(reuse),
              self._carried_objects(reuse, base))
             for mapping, reuse, base in items])

    def _evaluate_batch(self, tasks: list[tuple]
                        ) -> list[EvaluatedMapping | None]:
        results: list = [None] * len(tasks)
        pending: list[tuple[int, tuple]] = []
        first_position: set[tuple] = set()
        for position, task in enumerate(tasks):
            kind, mapping, reuse, carried = task
            if not self.use_cache:
                pending.append((position, task))
                continue
            key = self._memory_key(kind, mapping, reuse, carried)
            store = self._store(kind)
            if key in store:
                results[position] = self._record_memory_hit(kind, store[key])
                continue
            found, value = self._persistent_get(kind, mapping, reuse, carried)
            if found:
                store[key] = value
                results[position] = value
                continue
            if key in first_position:
                # A duplicate inside the batch: costed once, counted as
                # a cache hit — exactly what serial iteration does.
                results[position] = _Deferred(kind, key)
                continue
            first_position.add(key)
            pending.append((position, task))
        if pending:
            self._compute(pending, results)
        for position, value in enumerate(results):
            if isinstance(value, _Deferred):
                store = self._store(value.kind)
                if value.key in store:
                    results[position] = self._record_memory_hit(
                        value.kind, store[value.key])
                else:
                    # The twin evaluation was dropped by a fault (and
                    # deliberately not cached); this duplicate is
                    # dropped the same way, without counting a hit.
                    results[position] = None
        return results

    def _compute(self, pending: list[tuple[int, tuple]],
                 results: list) -> None:
        if self.jobs > 1 and len(pending) > 1:
            outputs = self._ensure_pool().run(
                [task for _, task in pending])
            for (position, task), output in zip(pending, outputs):
                self._absorb(output)
                results[position] = self._finish(task, output.result,
                                                 output.fault)
            return
        for position, task in pending:
            kind, mapping, reuse, carried = task
            value, fault = self._execute_uncached(kind, mapping, reuse,
                                                  carried)
            results[position] = self._finish(task, value, fault)

    def _execute_uncached(self, kind: str, mapping: Mapping,
                          reuse: dict[int, float] | None,
                          carried: dict[int, frozenset] | None
                          ) -> tuple[EvaluatedMapping | None, str | None]:
        """One logical evaluation under the retry policy.

        Returns ``(result, fault_category)``. Retryable failures (an
        injected transient fault, an infrastructure hiccup) are retried
        with backoff up to ``policy.max_attempts``; a retry that
        succeeds leaves the evaluation counters identical to a clean
        run (the evaluation is counted once, re-attempts under
        ``fault_retries``). Exhausted retries classify the candidate as
        infeasible-by-fault — ``(None, category)`` — which callers must
        never cache. Non-retryable failures propagate.
        """
        policy = self.policy
        self.counters.mappings_evaluated += 1
        attempt = 0
        while True:
            attempt += 1
            try:
                active_fault_plan().maybe_raise("evaluate")
                if kind == "partial":
                    return self._evaluate_partial_uncached(
                        mapping, reuse or {}, carried), None
                return self._evaluate_uncached(mapping), None
            except Exception as exc:
                category = classify(exc)
                if category not in RETRYABLE_CATEGORIES:
                    raise
                if attempt >= policy.max_attempts:
                    self.counters.faulted_evaluations += 1
                    self._metrics.incr(f"faulted.{category}")
                    self.tracer.event("evaluation_faulted",
                                      category=category, attempts=attempt)
                    return None, category
                self.counters.fault_retries += 1
                self._metrics.incr("retries")
                self.tracer.event("evaluation_retry", category=category,
                                  attempt=attempt)
                time.sleep(policy.backoff_for(attempt))

    def _finish(self, task: tuple, value: EvaluatedMapping | None,
                fault: str | None = None) -> EvaluatedMapping | None:
        """Store a freshly computed result in both cache layers.

        A fault-caused ``None`` (retries exhausted, deadline fired) is
        *not* a fact about the mapping and is never cached — the
        candidate stays evaluable in later rounds and later runs.
        """
        kind, mapping, reuse, carried = task
        if self.use_cache and fault is None:
            key = self._memory_key(kind, mapping, reuse, carried)
            self._store(kind)[key] = value
            self._persistent_put(kind, mapping, reuse, carried, value)
        return value

    def _absorb(self, output: WorkerOutput) -> None:
        """Fold a worker's counters, metrics, and spans into this run."""
        for name, delta in output.counters.items():
            setattr(self.counters, name, getattr(self.counters, name) + delta)
        if not self.tracer.enabled:
            return
        merge_metrics(self.tracer, output.metrics)
        graft_spans(self.tracer, output.spans)

    # ------------------------------------------------------------------
    # Cache layers
    # ------------------------------------------------------------------
    def _store(self, kind: str) -> dict:
        return self._partial_cache if kind == "partial" else self._cache

    def _memory_key(self, kind: str, mapping: Mapping,
                    reuse: dict[int, float] | None,
                    carried: dict[int, frozenset] | None) -> tuple:
        if kind == "partial":
            return (mapping.signature(),
                    frozenset((i, round(cost, 6))
                              for i, cost in (reuse or {}).items()),
                    frozenset((carried or {}).items()))
        return mapping.signature()

    def _record_memory_hit(self, kind: str,
                           value: EvaluatedMapping | None
                           ) -> EvaluatedMapping | None:
        # Feasible and infeasible lookups are counted apart: a cached
        # ``None`` never saved an advisor call, and folding it into the
        # hit rate used to overstate how much the memo was winning.
        if value is None:
            self.counters.cache_hits_infeasible += 1
            self._metrics.incr(f"cache_hits_{kind}_infeasible")
            self.tracer.event("cache_hit_infeasible", kind=kind)
        else:
            self.counters.cache_hits += 1
            self._metrics.incr(f"cache_hits_{kind}")
            self.tracer.event("cache_hit", kind=kind)
        return value

    def _persistent_key(self, kind: str, mapping: Mapping,
                        reuse: dict[int, float] | None,
                        carried: dict[int, frozenset] | None) -> CacheKey:
        extra = ""
        if kind == "partial":
            parts = [f"{i}:{cost!r}" for i, cost
                     in sorted((reuse or {}).items())]
            parts += [f"{i}:{','.join(sorted(objects))}"
                      for i, objects in sorted((carried or {}).items())]
            extra = _digest("|".join(parts))
        return CacheKey(problem=self._problem_digest(),
                        mapping=mapping_digest(mapping),
                        kind=kind, extra=extra)

    def _persistent_get(self, kind: str, mapping: Mapping,
                        reuse: dict[int, float] | None,
                        carried: dict[int, frozenset] | None
                        ) -> tuple[bool, EvaluatedMapping | None]:
        if self.cache is None:
            return False, None
        found, value = self.cache.get(
            self._persistent_key(kind, mapping, reuse, carried))
        if found:
            self.counters.persistent_cache_hits += 1
            self._metrics.incr(f"persistent_hits_{kind}")
            self.tracer.event("cache_hit_persistent", kind=kind)
        return found, value  # type: ignore[return-value]

    def _persistent_put(self, kind: str, mapping: Mapping,
                        reuse: dict[int, float] | None,
                        carried: dict[int, frozenset] | None,
                        value: EvaluatedMapping | None) -> None:
        if self.cache is None:
            return
        self.cache.put(self._persistent_key(kind, mapping, reuse, carried),
                       value)

    # ------------------------------------------------------------------
    # Evaluation proper
    # ------------------------------------------------------------------
    def _check_schema(self, mapping: Mapping, schema: MappedSchema) -> None:
        """Debug-mode assertion: the derived schema is lossless and
        well-formed (raises :class:`~repro.errors.CheckError`)."""
        from ..check import check_schema, checks_enabled, enforce

        if not checks_enabled():
            return
        enforce(check_schema(schema), self.tracer,
                context=f"mapping:{mapping_digest(mapping)}")

    def _update_load(self, schema: MappedSchema) -> dict[str, float]:
        """Row-insert rates per table for this mapping (extension)."""
        if not self.workload.updates:
            return {}
        from .updates import update_load_for
        return update_load_for(schema, self.collected, self.workload)

    def translate_workload(self, schema: MappedSchema
                           ) -> list[tuple[Query, float]]:
        translator = Translator(schema)
        return [(translator.translate(wq.query), wq.weight)
                for wq in self.workload]

    def _make_advisor(self, db: Database) -> IndexTuningAdvisor:
        return IndexTuningAdvisor(db, tracer=self.tracer,
                                  cost_cache=self._advisor_cost_cache)

    def _evaluate_uncached(self, mapping: Mapping) -> EvaluatedMapping | None:
        # ``mappings_evaluated`` is counted by ``_execute_uncached`` —
        # once per logical evaluation, however many attempts it takes.
        with self.tracer.span("evaluate.exact") as span:
            schema = derive_schema(mapping)
            self._check_schema(mapping, schema)
            try:
                sql_queries = self.translate_workload(schema)
            except TranslationError:
                span.set("outcome", "translation_failed")
                self._metrics.incr("translation_failures")
                return None
            db = build_stats_only_database(
                schema, self.collected,
                name=f"whatif:{mapping_digest(mapping)}",
                tracer=self.tracer)
            advisor = self._make_advisor(db)
            try:
                tuning = advisor.tune(sql_queries, self.storage_bound,
                                      update_load=self._update_load(schema))
            except SearchError:
                span.set("outcome", "tuning_failed")
                self._metrics.incr("tuning_failures")
                return None
            self.counters.tuner_calls += 1
            self.counters.optimizer_calls += tuning.optimizer_calls
            span.set("outcome", "ok")
            span.set("total_cost", tuning.total_cost)
            span.set("database", db.name)
            return EvaluatedMapping(mapping=mapping, schema=schema,
                                    database=db, sql_queries=sql_queries,
                                    tuning=tuning)

    # ------------------------------------------------------------------
    @staticmethod
    def _carried_objects(reuse: dict[int, float],
                         base: EvaluatedMapping | None
                         ) -> dict[int, frozenset]:
        """Object sets the reused costs were derived with, by index."""
        if base is None:
            return {}
        return {i: base.tuning.reports[i].objects_used for i in reuse
                if i < len(base.tuning.reports)}

    def _evaluate_partial_uncached(self, mapping: Mapping,
                                   reuse: dict[int, float],
                                   carried: dict[int, frozenset] | None
                                   ) -> EvaluatedMapping | None:
        carried = carried or {}
        with self.tracer.span("evaluate.partial",
                              reused=len(reuse)) as span:
            schema = derive_schema(mapping)
            self._check_schema(mapping, schema)
            try:
                sql_queries = self.translate_workload(schema)
            except TranslationError:
                span.set("outcome", "translation_failed")
                self._metrics.incr("translation_failures")
                return None
            db = build_stats_only_database(
                schema, self.collected,
                name=f"whatif:{mapping_digest(mapping)}",
                tracer=self.tracer)
            remaining = [(q, w) for i, (q, w) in enumerate(sql_queries)
                         if i not in reuse]
            span.set("remaining", len(remaining))
            advisor = self._make_advisor(db)
            try:
                tuning = advisor.tune(remaining, self.storage_bound,
                                      update_load=self._update_load(schema))
            except SearchError:
                span.set("outcome", "tuning_failed")
                self._metrics.incr("tuning_failures")
                return None
            self.counters.tuner_calls += 1
            self.counters.optimizer_calls += tuning.optimizer_calls
            self.counters.derived_query_costs += len(reuse)
            full = self._align_partial(tuning, sql_queries, reuse, carried)
            span.set("outcome", "ok")
            span.set("total_cost", full.total_cost)
            span.set("database", db.name)
            return EvaluatedMapping(mapping=mapping, schema=schema,
                                    database=db, sql_queries=sql_queries,
                                    tuning=full)

    def _align_partial(self, tuning: TuningResult,
                       sql_queries: list[tuple[Query, float]],
                       reuse: dict[int, float],
                       carried: dict[int, frozenset]) -> TuningResult:
        """Rebuild a partial tuning result on full-workload positions.

        The advisor only saw the non-reused queries, so its ``reports``
        list is shorter than the workload and indexed by *remaining*
        position. Consumers (``CostDerivation.reusable_costs``,
        ``TuningResult.cost_of``) index reports by full-workload
        position; returning the advisor's result unmodified silently
        misaligned every downstream per-query lookup. Reused queries get
        a synthesized report carrying their derived cost and the object
        set of the evaluation they were derived from.
        """
        remaining_reports = iter(tuning.reports)
        reports: list[QueryReport] = []
        reused_cost = 0.0
        for i, (query, weight) in enumerate(sql_queries):
            if i in reuse:
                reports.append(QueryReport(
                    query=query, weight=weight, cost=reuse[i],
                    objects_used=carried.get(i, frozenset())))
                reused_cost += weight * reuse[i]
            else:
                reports.append(next(remaining_reports))
        return TuningResult(
            configuration=tuning.configuration,
            total_cost=tuning.total_cost + reused_cost,
            reports=reports,
            optimizer_calls=tuning.optimizer_calls,
            candidates_considered=tuning.candidates_considered,
        )

