"""Plain-text tables and series, shaped like the paper's figures —
plus minimal self-contained HTML building blocks for run reports
(no external assets, safe to archive as a CI artifact)."""

from __future__ import annotations

import html as _html
from io import StringIO


def format_table(title: str, headers: list[str],
                 rows: list[list], note: str | None = None) -> str:
    """Fixed-width table with a title rule, like the paper's tables."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = StringIO()
    rule = "-+-".join("-" * w for w in widths)
    out.write(f"== {title} ==\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(rule + "\n")
    for row in cells:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    if note:
        out.write(f"note: {note}\n")
    return out.getvalue()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_series(title: str, x_label: str,
                  series: dict[str, dict[str, float]]) -> str:
    """One row per x value, one column per series (a figure-as-table)."""
    xs: list[str] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series)
    rows = [[x] + [series[name].get(x, "") for name in series] for x in xs]
    return format_table(title, headers, rows)


# ----------------------------------------------------------------------
# HTML run reports
# ----------------------------------------------------------------------

_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #c5c5d6; padding: .35rem .7rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eceef6; }
.kv dt { font-weight: 600; float: left; clear: left; width: 14rem; }
.kv dd { margin: 0 0 .2rem 14.5rem; }
.bar { display: flex; align-items: center; gap: .5rem;
       font-size: .85rem; margin: .12rem 0; }
.bar .label { width: 9rem; text-align: right;
              font-variant-numeric: tabular-nums; }
.bar .fill { background: #5560ab; height: .8rem; min-width: 1px; }
.bar .count { color: #555; }
"""


def html_escape(value) -> str:
    return _html.escape(_fmt(value) if isinstance(value, float)
                        else str(value))


def html_table(headers: list[str], rows: list[list]) -> str:
    """A plain HTML table with escaped cells."""
    out = ["<table>", "<tr>"]
    out += [f"<th>{html_escape(h)}</th>" for h in headers]
    out.append("</tr>")
    for row in rows:
        out.append("<tr>" + "".join(
            f"<td>{html_escape(cell)}</td>" for cell in row) + "</tr>")
    out.append("</table>")
    return "".join(out)


def html_definition_list(items: dict) -> str:
    """Key/value pairs rendered as a definition list."""
    out = ['<dl class="kv">']
    for key, value in items.items():
        out.append(f"<dt>{html_escape(key)}</dt>"
                   f"<dd>{html_escape(value)}</dd>")
    out.append("</dl>")
    return "".join(out)


def html_bar_chart(rows: list[tuple[str, float]],
                   unit: str = "") -> str:
    """Horizontal CSS bars: (label, value) scaled to the max value."""
    if not rows:
        return "<p>(no data)</p>"
    peak = max(value for _, value in rows) or 1.0
    out = []
    for label, value in rows:
        width = max(0.5, 100.0 * value / peak)
        out.append(
            f'<div class="bar"><span class="label">'
            f"{html_escape(label)}</span>"
            f'<span class="fill" style="width:{width:.1f}%"></span>'
            f'<span class="count">{value:g}{html_escape(unit)}</span>'
            f"</div>")
    return "".join(out)


def html_document(title: str, sections: list[tuple[str, str]]) -> str:
    """A complete standalone HTML page from (heading, body-html) pairs."""
    parts = ["<!DOCTYPE html>", "<html><head>",
             '<meta charset="utf-8">',
             f"<title>{html_escape(title)}</title>",
             f"<style>{_HTML_STYLE}</style>",
             "</head><body>",
             f"<h1>{html_escape(title)}</h1>"]
    for heading, body in sections:
        if heading:
            parts.append(f"<h2>{html_escape(heading)}</h2>")
        parts.append(body)
    parts.append("</body></html>")
    return "\n".join(parts)
