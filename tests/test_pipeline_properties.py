"""Property-based end-to-end tests over *random* schemas.

Hypothesis generates random schema trees (with optionals, choices, and
repetitions), random conforming documents, and random mappings
(annotations + repetition splits + union distributions). For every
combination, the full pipeline — shred, derive stats, translate, plan,
execute — must agree with the XPath reference evaluator.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.errors import TranslationError
from repro.mapping import (Mapping, UnionDistribution, collect_statistics,
                           derive_schema, derive_table_stats,
                           hybrid_inlining, load_documents, Shredder)
from repro.translate import translate_xpath
from repro.xmlkit import Document, Element
from repro.xpath import evaluate_values, parse_xpath
from repro.xsd import BaseType, NodeKind, TreeBuilder

_FIELDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]


@st.composite
def schema_specs(draw):
    """A random flat record schema: root -> item* -> fields.

    Each field is plain, optional, repeated, or part of a choice pair —
    covering every constructor the mapping layer handles.
    """
    n_fields = draw(st.integers(2, 6))
    kinds = draw(st.lists(
        st.sampled_from(["plain", "optional", "repeated"]),
        min_size=n_fields, max_size=n_fields))
    with_choice = draw(st.booleans())
    return kinds, with_choice


def build_tree(kinds: list[str], with_choice: bool):
    b = TreeBuilder("random")
    root = b.tag("root", annotation="root")
    rep = b.rep(root)
    item = b.tag("item", rep, annotation="item")
    field_nodes = []
    for i, kind in enumerate(kinds):
        name = _FIELDS[i]
        if kind == "plain":
            field_nodes.append((b.leaf(name, item), kind))
        elif kind == "optional":
            field_nodes.append((b.optional_leaf(name, item), kind))
        else:
            field_nodes.append(
                (b.repeated_leaf(name, item, annotation=name), kind))
    if with_choice:
        choice = b.choice(item)
        b.leaf("left", choice, BaseType.INTEGER)
        b.leaf("right", choice, BaseType.INTEGER)
    return b.build(root), field_nodes


def build_document(tree, kinds, with_choice, seed, n_items=30):
    rng = random.Random(seed)
    root = Element("root")
    for i in range(n_items):
        item = root.make_child("item")
        for j, kind in enumerate(kinds):
            name = _FIELDS[j]
            if kind == "plain":
                item.make_child(name, f"v{rng.randrange(6)}")
            elif kind == "optional":
                if rng.random() < 0.6:
                    item.make_child(name, f"o{rng.randrange(4)}")
            else:
                for _ in range(rng.randrange(4)):
                    item.make_child(name, f"r{rng.randrange(5)}")
        if with_choice:
            side = "left" if rng.random() < 0.5 else "right"
            item.make_child(side, str(rng.randrange(100)))
    return Document(root)


def random_mapping(tree, kinds, with_choice, seed) -> Mapping:
    rng = random.Random(seed)
    mapping = hybrid_inlining(tree)
    item = tree.find_tag_by_path(("root", "item"))
    for j, kind in enumerate(kinds):
        name = _FIELDS[j]
        leaf = tree.find_tag_by_path(("root", "item", name))
        if kind == "repeated" and rng.random() < 0.5:
            rep = tree.parent(leaf)
            mapping = mapping.with_split(rep.node_id, rng.choice([1, 2, 3]))
        elif kind == "optional" and rng.random() < 0.4:
            option = tree.parent(leaf)
            mapping = mapping.with_distribution(UnionDistribution(
                optional_ids=frozenset({option.node_id})))
        elif kind == "plain" and rng.random() < 0.3:
            mapping = mapping.with_annotation(leaf.node_id, f"{name}_out")
    if with_choice and rng.random() < 0.5:
        choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
        mapping = mapping.with_distribution(
            UnionDistribution(choice_id=choice.node_id))
    mapping.validate()
    return mapping


def queries_for(kinds, with_choice):
    out = ["/root/item/" + _FIELDS[0]]
    for j, kind in enumerate(kinds):
        out.append(f"//item/{_FIELDS[j]}")
    out.append(f'//item[{_FIELDS[0]} = "v2"]/({_FIELDS[0]} | {_FIELDS[1]})')
    if "optional" in kinds:
        opt = _FIELDS[kinds.index("optional")]
        out.append(f"//item[{opt}]/{_FIELDS[0]}")
    if "repeated" in kinds:
        repd = _FIELDS[kinds.index("repeated")]
        out.append(f'//item[{repd} = "r1"]/{_FIELDS[0]}')
    if with_choice:
        out.append("//item/left")
        out.append('//item[right >= "50"]/' + _FIELDS[0])
    return out


@given(schema_specs(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_mapping_pipeline_equivalence(spec, seed):
    kinds, with_choice = spec
    tree, _ = build_tree(kinds, with_choice)
    doc = build_document(tree, kinds, with_choice, seed)
    mapping = random_mapping(tree, kinds, with_choice, seed + 1)
    schema = derive_schema(mapping)
    db = Database()
    load_documents(db, schema, doc)
    for xpath in queries_for(kinds, with_choice):
        expected = sorted(evaluate_values(parse_xpath(xpath), doc))
        try:
            sql = translate_xpath(schema, xpath)
        except TranslationError:
            continue  # outside the supported translation subset
        rows = db.execute(sql).rows
        got = sorted(str(v) for row in rows for v in row[1:]
                     if v is not None)
        assert got == expected, (xpath, mapping.signature())


@given(schema_specs(), st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_random_mapping_derived_stats_match_shredded(spec, seed):
    kinds, with_choice = spec
    tree, _ = build_tree(kinds, with_choice)
    doc = build_document(tree, kinds, with_choice, seed)
    mapping = random_mapping(tree, kinds, with_choice, seed + 1)
    schema = derive_schema(mapping)
    shredded = Shredder(schema).shred(doc)
    stats = collect_statistics(tree, doc)
    derived = derive_table_stats(schema, stats)
    for table_name, rows in shredded.items():
        assert derived[table_name].row_count == len(rows), table_name
