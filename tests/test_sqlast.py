"""Unit tests for the SQL AST, renderer, and parser."""

import pytest

from repro.errors import SQLParseError
from repro.sqlast import (And, ColumnRef, Comparison, ComparisonOp, Exists,
                          IsNull, Literal, Or, Query, Select, SelectItem,
                          TableRef, conjunction, conjuncts_of, parse_sql,
                          render, single_select)

PAPER_SQL = (
    "SELECT I.ID, title, year, NULL FROM inproc I "
    "WHERE booktitle = 'SIGMOD CONFERENCE' "
    "UNION ALL "
    "SELECT I.ID, NULL, NULL, author FROM inproc I, inproc_author A "
    "WHERE booktitle = 'SIGMOD CONFERENCE' AND I.ID = A.PID "
    "ORDER BY 1"
)


class TestAst:
    def test_literal_rendering(self):
        assert str(Literal("o'brien")) == "'o''brien'"
        assert str(Literal(None)) == "NULL"
        assert str(Literal(42)) == "42"

    def test_union_width_checked(self):
        s1 = Select((SelectItem(Literal(1)),), (TableRef("t", "t"),))
        s2 = Select((SelectItem(Literal(1)), SelectItem(Literal(2))),
                    (TableRef("t", "t"),))
        with pytest.raises(ValueError):
            Query(selects=(s1, s2))

    def test_conjunction_flattens(self):
        a = Comparison(ColumnRef("t", "x"), ComparisonOp.EQ, Literal(1))
        b = Comparison(ColumnRef("t", "y"), ComparisonOp.EQ, Literal(2))
        c = Comparison(ColumnRef("t", "z"), ComparisonOp.EQ, Literal(3))
        combined = conjunction([And((a, b)), c])
        assert isinstance(combined, And)
        assert combined.items == (a, b, c)
        assert conjunction([]) is None
        assert conjunction([a]) is a

    def test_conjuncts_of(self):
        a = Comparison(ColumnRef("t", "x"), ComparisonOp.EQ, Literal(1))
        assert conjuncts_of(None) == []
        assert conjuncts_of(a) == [a]
        assert conjuncts_of(And((a, a))) == [a, a]

    def test_referenced_tables_includes_exists(self):
        inner = Select((SelectItem(Literal(1)),), (TableRef("ovf", "o"),),
                       Comparison(ColumnRef("o", "PID"), ComparisonOp.EQ,
                                  ColumnRef("m", "ID")))
        outer = single_select(
            [SelectItem(ColumnRef("m", "title"))],
            [TableRef("movie", "m")],
            where=Exists(inner))
        assert outer.referenced_tables == frozenset({"movie", "ovf"})


class TestParser:
    def test_paper_query_parses(self):
        q = parse_sql(PAPER_SQL)
        assert len(q.selects) == 2
        assert q.order_by == (1,)
        assert q.selects[0].items[0].expr == ColumnRef("I", "ID")
        assert q.selects[0].items[3].expr == Literal(None)
        assert q.referenced_tables == frozenset({"inproc", "inproc_author"})

    def test_roundtrip_via_str(self):
        q = parse_sql(PAPER_SQL)
        assert parse_sql(str(q)) == q

    def test_roundtrip_via_render(self):
        q = parse_sql(PAPER_SQL)
        assert parse_sql(render(q)) == q

    def test_or_precedence(self):
        q = parse_sql("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3")
        where = q.selects[0].where
        assert isinstance(where, Or)
        assert isinstance(where.items[0], And)

    def test_parenthesized_or(self):
        q = parse_sql("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        where = q.selects[0].where
        assert isinstance(where, And)
        assert isinstance(where.items[1], Or)

    def test_is_null(self):
        q = parse_sql("SELECT x FROM t WHERE t.x IS NULL AND t.y IS NOT NULL")
        where = q.selects[0].where
        assert where.items[0] == IsNull(ColumnRef("t", "x"))
        assert where.items[1] == IsNull(ColumnRef("t", "y"), negated=True)

    def test_exists(self):
        q = parse_sql("SELECT x FROM t WHERE EXISTS "
                      "(SELECT 1 FROM u WHERE u.pid = t.id)")
        where = q.selects[0].where
        assert isinstance(where, Exists)
        assert where.subquery.from_tables[0].table == "u"

    def test_string_escapes(self):
        q = parse_sql("SELECT x FROM t WHERE name = 'o''brien'")
        comparison = q.selects[0].where
        assert comparison.right == Literal("o'brien")

    def test_alias_forms(self):
        q = parse_sql("SELECT t.x AS col FROM tbl t")
        assert q.selects[0].items[0].alias == "col"
        assert q.selects[0].from_tables[0] == TableRef("tbl", "t")

    def test_numeric_literals(self):
        q = parse_sql("SELECT x FROM t WHERE a = -5 AND b = 2.5")
        items = conjuncts_of(q.selects[0].where)
        assert items[0].right == Literal(-5)
        assert items[1].right == Literal(2.5)

    @pytest.mark.parametrize("bad", [
        "SELECT FROM t",
        "SELECT x",
        "SELECT x FROM t WHERE",
        "SELECT x FROM t ORDER 1",
        "SELECT x FROM t WHERE a == 1 extra",
        "SELECT x FROM where",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SQLParseError):
            parse_sql(bad)
