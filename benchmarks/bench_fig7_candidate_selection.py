"""Fig. 7 — speed-up from candidate selection on DBLP.

Paper shapes asserted: skipping subsumed transformations is the dominant
factor (8-12x in the paper); the remaining selection rules add roughly
another 2x; quality does not degrade.
"""

import statistics

from conftest import QUERIES

from repro.experiments import fig7_table, run_fig7


def test_fig7_candidate_selection(benchmark, dblp_bundle, emit):
    generator = dblp_bundle.workload_generator(seed=43)
    # The unpruned baseline re-costs every transformation every round,
    # so Fig. 7 runs on the paper's smaller (10-query) workloads.
    workloads = [
        generator.generate(QUERIES),
        generator.generate(QUERIES, selectivity=(0.5, 1.0),
                           projections=(5, 20)),
    ]
    rows = benchmark.pedantic(
        lambda: run_fig7(dblp_bundle, workloads), rounds=1, iterations=1)
    emit(fig7_table(rows, dblp_bundle.name))
    subsumed = statistics.mean(r.subsumed_speedup for r in rows)
    overall = statistics.mean(r.overall_speedup for r in rows)
    assert subsumed > 1.5, "skipping subsumed transformations must pay"
    assert overall > subsumed, \
        "the full rule set must beat subsumed-skipping alone"
    assert overall > 5, "candidate selection must be a large win overall"
    for row in rows:
        assert row.quality_full <= row.quality_unpruned * 1.5 + 0.1, \
            "candidate selection must not lose (much) quality"
