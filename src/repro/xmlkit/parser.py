"""A from-scratch, non-validating XML parser.

Supports the subset of XML needed for data files and XSD documents:

* elements with attributes (single- or double-quoted)
* character data with the five predefined entities and numeric references
* comments, processing instructions, CDATA sections, and DOCTYPE
  declarations (skipped)
* an optional XML declaration

It is deliberately strict about well-formedness (mismatched tags, stray
``<``, unterminated constructs all raise :class:`~repro.errors.XMLParseError`
with a line/column) because the shredder must never load garbage silently.
"""

from __future__ import annotations

from ..errors import XMLParseError
from .doc import Document, Element

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the input text with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self, pos: int | None = None) -> tuple[int, int]:
        """Return (line, column), both 1-based, for a position."""
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        column = pos - last_nl
        return line, column

    def error(self, message: str, pos: int | None = None) -> XMLParseError:
        line, column = self.location(pos)
        return XMLParseError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def read_until(self, token: str, construct: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {construct}")
        value = self.text[self.pos:end]
        self.pos = end + len(token)
        return value

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start:self.pos]


def _decode_entities(raw: str, scanner: _Scanner, at: int) -> str:
    """Replace entity and character references in character data."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference", at + i)
        name = raw[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};", at + i) from None
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};", at + i) from None
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};", at + i)
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        at = scanner.pos
        raw = scanner.read_until(quote, "attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}", at)
        attributes[name] = _decode_entities(raw, scanner, at)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip comments, PIs, and DOCTYPE between/around elements."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>", "processing instruction")
        elif scanner.startswith("<!DOCTYPE"):
            # Skip to the matching '>' allowing one level of [...] subset.
            depth = 0
            while not scanner.at_end():
                ch = scanner.peek()
                scanner.advance()
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
            else:
                raise scanner.error("unterminated DOCTYPE")
        else:
            return


def parse(text: str) -> Document:
    """Parse XML text into a :class:`~repro.xmlkit.doc.Document`."""
    scanner = _Scanner(text)
    version, encoding = "1.0", "UTF-8"
    scanner.skip_whitespace()
    if scanner.startswith("<?xml"):
        scanner.advance(5)
        declared = _parse_attributes(scanner)
        scanner.skip_whitespace()
        scanner.expect("?>")
        version = declared.get("version", version)
        encoding = declared.get("encoding", encoding)
    _skip_misc(scanner)
    if scanner.peek() != "<":
        raise scanner.error("expected root element")
    root = _parse_element(scanner)
    _skip_misc(scanner)
    if not scanner.at_end():
        raise scanner.error("content after root element")
    return Document(root, version=version, encoding=encoding)


def parse_file(path: str) -> Document:
    """Parse an XML file (UTF-8) into a Document."""
    with open(path, encoding="utf-8") as handle:
        return parse(handle.read())


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    tag = scanner.read_name()
    attributes = _parse_attributes(scanner)
    element = Element(tag, attributes)
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return element
    scanner.expect(">")
    _parse_content(scanner, element)
    return element


def _parse_content(scanner: _Scanner, element: Element) -> None:
    """Parse mixed content up to and including this element's end tag."""
    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{element.tag}>")
        if scanner.startswith("</"):
            scanner.advance(2)
            name = scanner.read_name()
            if name != element.tag:
                raise scanner.error(
                    f"mismatched end tag </{name}> for <{element.tag}>")
            scanner.skip_whitespace()
            scanner.expect(">")
            return
        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<![CDATA["):
            scanner.advance(9)
            element.add_text(scanner.read_until("]]>", "CDATA section"))
        elif scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>", "processing instruction")
        elif scanner.peek() == "<":
            element.append(_parse_element(scanner))
        else:
            start = scanner.pos
            end = scanner.text.find("<", start)
            if end < 0:
                raise scanner.error(f"unterminated element <{element.tag}>")
            raw = scanner.text[start:end]
            scanner.pos = end
            element.add_text(_decode_entities(raw, scanner, start))
