"""Cross-backend tests: the SQLite backend, dialect round-trips,
differential validation, and executor-divergence regression tests.

The divergence regression tests in ``TestComparatorRegression`` were
written against the *observed* disagreement before the fix landed (see
the class docstring); they pin the engine to SQLite's semantics.
"""

import pytest

from repro.backends import (CalibrationReport, DiffReport, EngineBackend,
                            QueryTiming, SQLBackend, SQLiteBackend,
                            compare_backends, create_index_sql,
                            create_table_sql, insert_sql, multiset_diff,
                            normalize_row, quote_identifier, render_query,
                            run_calibration, spearman, timed_runs,
                            validate_design)
from repro.backends.sqlite import BackendError
from repro.check.runtime import override_checks
from repro.datasets import (dblp_schema, generate_dblp, generate_movies,
                            movie_schema)
from repro.engine import Column, Index, SQLType, Table
from repro.engine.expressions import _comparator
from repro.experiments import DatasetBundle
from repro.mapping import (collect_statistics, derive_schema, fully_split,
                           hybrid_inlining, shared_inlining)
from repro.physdesign import Configuration
from repro.search import GreedySearch
from repro.sqlast import (ColumnRef, Comparison, ComparisonOp, IsNull,
                          Literal, Or, Query, Select, SelectItem, TableRef)
from repro.translate import Translator
from repro.workload import WorkloadGenerator
from repro.xpath import parse_xpath

SCALE = 60
SEED = 7

PRESETS = {
    "hybrid": hybrid_inlining,
    "shared": shared_inlining,
    "fully-split": fully_split,
}


@pytest.fixture(scope="module")
def dblp_data():
    tree = dblp_schema()
    return tree, generate_dblp(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def movie_data():
    tree = movie_schema()
    return tree, generate_movies(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def hybrid_pair(dblp_data):
    """Engine + SQLite loaded with the same shredded DBLP data."""
    tree, docs = dblp_data
    schema = derive_schema(hybrid_inlining(tree))
    engine = EngineBackend()
    engine.load(schema, docs)
    sqlite_backend = SQLiteBackend()
    sqlite_backend.load(schema, docs)
    yield schema, engine, sqlite_backend
    sqlite_backend.close()


def _translate(schema, xpath: str) -> Query:
    return Translator(schema).translate(parse_xpath(xpath))


def _agree(engine, sqlite_backend, query: Query) -> tuple[int, int]:
    engine_rows = engine.execute(query)
    sqlite_rows = sqlite_backend.execute(query)
    missing, extra = multiset_diff(engine_rows, sqlite_rows)
    assert not missing and not extra, (
        f"backends diverge on {render_query(query)}: "
        f"missing={missing[:3]} extra={extra[:3]}")
    return len(engine_rows), len(sqlite_rows)


class TestComparatorRegression:
    """Regression tests for the confirmed executor/SQLite divergence.

    Before the fix, the engine's comparator fell back to *textual*
    comparison when cross-type float coercion failed, so
    ``year < '!x'`` on an INTEGER column matched nothing (``"1995" >
    "!x"`` textually) while SQLite — which orders the INTEGER storage
    class strictly below TEXT — matched every row. The engine's own
    B+-tree ``encode_key`` already used numeric-below-text order, so
    index seeks and sequential-scan filters disagreed *within* the
    engine too. The comparator now follows ``encode_key``.
    """

    def test_integer_column_below_nonnumeric_text(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        query = _translate(schema, '//inproceedings[year < "!x"]/title')
        # The static analyzer rightly lints this as SQL005 (mixed type
        # families); here the mixed comparison is the point.
        with override_checks(False):
            n_engine, _ = _agree(engine, sqlite_backend, query)
        # Every row has a year, and numbers sort below text: all match.
        assert n_engine > 0

    def test_integer_column_never_ge_nonnumeric_text(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        query = _translate(schema, '//inproceedings[year >= "!x"]/title')
        with override_checks(False):
            n_engine, n_sqlite = _agree(engine, sqlite_backend, query)
        assert n_engine == 0 and n_sqlite == 0

    def test_comparator_orders_numbers_below_text(self):
        assert _comparator(ComparisonOp.LT)(1995, "!x")
        assert not _comparator(ComparisonOp.GE)(1995, "!x")
        assert not _comparator(ComparisonOp.EQ)(1995, "!x")
        assert _comparator(ComparisonOp.NE)(1995, "!x")
        assert _comparator(ComparisonOp.GT)("!x", 1995)

    def test_comparator_still_coerces_numeric_strings(self):
        assert _comparator(ComparisonOp.EQ)(1999, "1999.0")
        assert _comparator(ComparisonOp.LT)(1999, "2000")

    def test_comparator_null_always_false(self):
        for op in ComparisonOp:
            assert not _comparator(op)(None, 1)
            assert not _comparator(op)("x", None)
            assert not _comparator(op)(None, None)

    def test_null_literal_comparison_matches_sqlite(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        table = schema.to_engine_tables()[0]
        column = table.columns[-1].name
        query = Query(selects=(Select(
            items=(SelectItem(ColumnRef("T", column)),),
            from_tables=(TableRef(table.name, "T"),),
            where=Comparison(ColumnRef("T", column), ComparisonOp.EQ,
                             Literal(None))),))
        n_engine, n_sqlite = _agree(engine, sqlite_backend, query)
        assert n_engine == 0 and n_sqlite == 0


class TestDialectRoundTrip:
    """render_query output must prepare (and run) on real sqlite3."""

    def test_all_comparison_ops_prepare(self, hybrid_pair):
        schema, _, sqlite_backend = hybrid_pair
        for op in ComparisonOp:
            query = _translate(schema, '//inproceedings[year = "1999"]/title')
            select = query.selects[0]
            rewritten = Query(
                selects=(Select(
                    items=select.items,
                    from_tables=select.from_tables,
                    where=Comparison(ColumnRef("", "year"), op,
                                     Literal(1999))),)
                + query.selects[1:],
                order_by=query.order_by)
            sqlite_backend.prepare(rewritten)

    def test_literal_variants_prepare(self, hybrid_pair):
        schema, _, sqlite_backend = hybrid_pair
        table = schema.to_engine_tables()[0]
        column = table.columns[0].name
        for value in (None, True, False, 0, -3, 2.5, 1e300,
                      "it's quoted", ""):
            query = Query(selects=(Select(
                items=(SelectItem(ColumnRef("T", column)),),
                from_tables=(TableRef(table.name, "T"),),
                where=Comparison(ColumnRef("T", column), ComparisonOp.NE,
                                 Literal(value))),))
            sqlite_backend.prepare(query)

    def test_isnull_both_polarities(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        table = schema.to_engine_tables()[0]
        column = table.columns[-1].name
        for negated in (False, True):
            query = Query(selects=(Select(
                items=(SelectItem(ColumnRef("T", column)),),
                from_tables=(TableRef(table.name, "T"),),
                where=IsNull(ColumnRef("T", column), negated=negated)),))
            _agree(engine, sqlite_backend, query)

    def test_or_of_comparisons(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        base = _translate(schema, '//inproceedings[year = "1999"]/title')
        select = base.selects[0]
        where = Or(items=(
            Comparison(ColumnRef("", "year"), ComparisonOp.EQ, Literal(1999)),
            Comparison(ColumnRef("", "year"), ComparisonOp.EQ, Literal(2000)),
        ))
        query = Query(
            selects=(Select(items=select.items,
                            from_tables=select.from_tables,
                            where=where),) + base.selects[1:],
            order_by=base.order_by)
        sqlite_backend.prepare(query)

    def test_exists_probe_runs_on_both(self, hybrid_pair):
        # Existence predicates translate to EXISTS + IS NULL probes and
        # exercise And as well — the full boolean vocabulary at once.
        schema, engine, sqlite_backend = hybrid_pair
        query = _translate(schema, '//inproceedings[author]/title')
        n_engine, _ = _agree(engine, sqlite_backend, query)
        assert n_engine > 0

    def test_union_all_with_order_by(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        query = _translate(
            schema,
            '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
            '/(title | year | author)')
        assert len(query.selects) > 1 and query.order_by
        assert "UNION ALL" in render_query(query)
        _agree(engine, sqlite_backend, query)

    def test_generated_workload_prepares_on_all_presets(self, dblp_data):
        tree, docs = dblp_data
        stats = collect_statistics(tree, docs)
        workload = WorkloadGenerator(tree, stats, seed=11).generate(8)
        for label, preset in PRESETS.items():
            schema = derive_schema(preset(tree))
            translator = Translator(schema)
            with SQLiteBackend() as backend:
                backend.load(schema, docs)
                for weighted in workload.queries:
                    backend.prepare(translator.translate(weighted.query))

    def test_quote_identifier_doubles_quotes(self):
        assert quote_identifier('a"b') == '"a""b"'
        assert quote_identifier("order") == '"order"'

    def test_ddl_keywords_and_includes(self):
        table = Table(name="order", columns=[
            Column("ID", SQLType.INTEGER),
            Column("group", SQLType.VARCHAR),
            Column("when", SQLType.DATE),
        ], primary_key="ID")
        ddl = create_table_sql(table)
        assert '"order"' in ddl and '"group"' in ddl and '"when"' in ddl
        assert "PRIMARY KEY" in ddl
        # DATE columns get TEXT affinity: the engine stores them as
        # strings and NUMERIC affinity would re-type year-like values.
        assert "TEXT" in ddl
        index = Index(name="ix", table_name="order",
                      key_columns=("group",), included_columns=("when",))
        index_sql = create_index_sql(index)
        # SQLite has no INCLUDE clause: included columns join the key.
        assert '"group", "when"' in index_sql
        assert insert_sql(table).count("?") == 3


class TestDifferentialSuite:
    """Every translated query agrees on both backends, across datasets,
    mapping presets, and tuned physical designs."""

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_dblp_presets_agree(self, dblp_data, preset):
        tree, docs = dblp_data
        stats = collect_statistics(tree, docs)
        schema = derive_schema(PRESETS[preset](tree))
        translator = Translator(schema)
        workload = WorkloadGenerator(tree, stats, seed=3).generate(6)
        queries = [translator.translate(w.query) for w in workload.queries]
        report = validate_design(schema, Configuration(), docs, queries)
        assert report.ok, report.describe()
        assert report.queries_checked == len(queries)

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_movie_presets_agree(self, movie_data, preset):
        tree, docs = movie_data
        stats = collect_statistics(tree, docs)
        schema = derive_schema(PRESETS[preset](tree))
        translator = Translator(schema)
        workload = WorkloadGenerator(tree, stats, seed=5).generate(6)
        queries = [translator.translate(w.query) for w in workload.queries]
        report = validate_design(schema, Configuration(), docs, queries)
        assert report.ok, report.describe()

    def test_tuned_greedy_design_agrees(self, dblp_data):
        # Real CREATE INDEX + populated view tables must not change
        # results, only speed.
        tree, docs = dblp_data
        stats = collect_statistics(tree, docs)
        workload = WorkloadGenerator(tree, stats, seed=3).generate(6)
        result = GreedySearch(tree, workload, stats,
                              storage_bound=512 * 1024 * 1024).run()
        queries = [query for query, _ in result.sql_queries]
        report = validate_design(result.schema, result.configuration,
                                 docs, queries)
        assert report.ok, report.describe()

    def test_divergence_report_shape(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        query = _translate(schema, '//inproceedings/title')
        report = compare_backends(engine, sqlite_backend, [query])
        assert isinstance(report, DiffReport)
        assert report.ok and "0 divergences" in report.describe()


class TestMultisetDiff:
    def test_normalize_collapses_bool_and_integral_float(self):
        assert normalize_row((True, 3.0, "x", 2.5)) == (1, 3, "x", 2.5)

    def test_diff_is_order_insensitive(self):
        a = [(1, "a"), (2, "b"), (2, "b")]
        b = [(2, "b"), (1, "a"), (2, "b")]
        assert multiset_diff(a, b) == ([], [])

    def test_diff_reports_multiplicity(self):
        missing, extra = multiset_diff([(1,), (1,)], [(1,), (2,)])
        assert missing == [(1,)] and extra == [(2,)]


class TestBackendBasics:
    def test_protocol_conformance(self):
        assert isinstance(SQLiteBackend(), SQLBackend)
        assert isinstance(EngineBackend(), SQLBackend)

    def test_row_counts_match_engine(self, hybrid_pair):
        schema, engine, sqlite_backend = hybrid_pair
        for table in schema.to_engine_tables():
            engine_table = engine.db.catalog.table(table.name)
            (count,), = sqlite_backend.execute_sql(
                f'SELECT COUNT(*) FROM "{table.name}"')
            assert count == len(engine_table.rows or [])

    def test_apply_configuration_builds_real_structures(self, dblp_data):
        tree, docs = dblp_data
        stats = collect_statistics(tree, docs)
        workload = WorkloadGenerator(tree, stats, seed=3).generate(6)
        result = GreedySearch(tree, workload, stats,
                              storage_bound=512 * 1024 * 1024).run()
        with SQLiteBackend() as backend:
            backend.load(result.schema, docs)
            backend.apply_configuration(result.configuration)
            names = {name for (name,) in backend.execute_sql(
                "SELECT name FROM sqlite_master")}
            for index in result.configuration.indexes:
                assert index.name in names
            for view in result.configuration.views:
                assert view.name in names

    def test_time_query_returns_positive_median(self, hybrid_pair):
        schema, _, sqlite_backend = hybrid_pair
        query = _translate(schema, '//inproceedings/title')
        timing = sqlite_backend.time_query(query, repeat=3, warmup=1)
        assert isinstance(timing, QueryTiming)
        assert timing.seconds > 0.0 and len(timing.runs) == 3
        assert timing.rows > 0 and timing.best <= timing.seconds * 1.5

    def test_engine_backend_timing_is_deterministic(self, hybrid_pair):
        schema, engine, _ = hybrid_pair
        query = _translate(schema, '//inproceedings/title')
        first = engine.time_query(query, repeat=2, warmup=0)
        second = engine.time_query(query, repeat=2, warmup=0)
        assert first.seconds == second.seconds > 0

    def test_bad_sql_raises_backend_error(self, hybrid_pair):
        _, _, sqlite_backend = hybrid_pair
        with pytest.raises(BackendError):
            sqlite_backend.execute_sql("SELECT * FROM no_such_table")

    def test_timed_runs_median(self):
        ticks = iter([0.0, 0.4, 1.0, 1.5])
        values = iter([[1], [1], [1]])

        def run():
            return next(values)

        timing = timed_runs(run, repeat=2, warmup=1,
                            clock=lambda: next(ticks))
        assert len(timing.runs) == 2 and timing.rows == 1
        assert timing.seconds == pytest.approx(0.45)


class TestSpearman:
    def test_perfect_and_inverse(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_get_average_ranks(self):
        assert spearman([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert spearman([1], [2]) == 0.0
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0


class TestCalibrationSmoke:
    def test_run_calibration_structure(self):
        bundle = DatasetBundle.dblp(scale=40, seed=7)
        workload = bundle.workload_generator(seed=3).generate(4)
        report = run_calibration(bundle, workload,
                                 algorithms=("greedy",), repeat=1, warmup=0)
        assert isinstance(report, CalibrationReport)
        assert {d.label for d in report.designs} == {"logical-only", "greedy"}
        for design in report.designs:
            assert design.estimated_cost > 0
            assert design.measured_seconds > 0
            assert len(design.queries) == 4
            assert all(q.measured_seconds > 0 for q in design.queries)
        # The search must not think it made things worse than doing
        # nothing about physical design.
        assert (report.design("greedy").estimated_cost
                <= report.design("logical-only").estimated_cost)
        text = report.describe()
        assert "rank correlation" in text and "logical-only" in text


# ----------------------------------------------------------------------
# Crash-safe bulk load (the load manifest)
# ----------------------------------------------------------------------


class TestCrashSafeLoad:
    """An interrupted ``load()`` must be detected on reopen and either
    resumed to a byte-identical database or rolled back cleanly —
    never a raw sqlite error or a partial table set."""

    @pytest.fixture(autouse=True)
    def _no_leaked_faults(self):
        from repro.resilience import NULL_PLAN, install_fault_plan
        install_fault_plan(NULL_PLAN)
        yield
        install_fault_plan(NULL_PLAN)

    def _schema(self, dblp_data):
        tree, docs = dblp_data
        return derive_schema(hybrid_inlining(tree)), docs

    def _table_digests(self, path, schema):
        """Sorted-row digest per mapped table of the database file."""
        with SQLiteBackend(str(path), read_only=True) as backend:
            return {name: sorted(backend.execute_sql(
                        f'SELECT * FROM "{name}"'))
                    for name in schema.table_names}

    def _crash_load(self, path, schema, docs, after_batches=3):
        """Kill a fresh load after ``after_batches`` committed batches
        (fault-raised mid-load, connection discarded uncommitted — the
        same durable state a SIGKILL leaves behind under WAL)."""
        from repro.errors import InjectedFault
        from repro.resilience import install_fault_plan
        install_fault_plan(
            f"backend.load.batch:1:fatal:0:{after_batches}")
        backend = SQLiteBackend(str(path))
        with pytest.raises(InjectedFault):
            backend.load(schema, docs, batch_size=40, txn_rows=40)
        backend.close()  # uncommitted work rolls back, as after SIGKILL
        from repro.resilience import NULL_PLAN
        install_fault_plan(NULL_PLAN)

    def test_clean_load_writes_complete_manifest(self, dblp_data, tmp_path):
        schema, docs = self._schema(dblp_data)
        with SQLiteBackend(str(tmp_path / "clean.db")) as backend:
            backend.load(schema, docs)
            manifest = backend.load_manifest()
            assert manifest is not None and manifest.complete
            assert manifest.mode == "fresh"
            assert manifest.watermarks == backend.row_counts

    def test_interrupted_load_is_detected_on_reopen(self, dblp_data,
                                                    tmp_path):
        schema, docs = self._schema(dblp_data)
        path = tmp_path / "crashed.db"
        self._crash_load(path, schema, docs)
        with SQLiteBackend(str(path)) as backend:
            manifest = backend.load_manifest()
            assert manifest is not None and not manifest.complete
            # Something committed, but not everything.
            committed = sum(manifest.watermarks.values())
            assert 0 < committed < sum(
                self._clean_row_counts(schema, docs).values())

    def _clean_row_counts(self, schema, docs):
        with SQLiteBackend() as backend:
            backend.load(schema, docs)
            return dict(backend.row_counts)

    def test_resume_reproduces_the_clean_load(self, dblp_data, tmp_path):
        schema, docs = self._schema(dblp_data)
        clean, crashed = tmp_path / "clean.db", tmp_path / "crashed.db"
        with SQLiteBackend(str(clean)) as backend:
            backend.load(schema, docs)
            clean_counts = dict(backend.row_counts)
        self._crash_load(crashed, schema, docs)
        with SQLiteBackend(str(crashed)) as backend:
            backend.load(schema, docs, batch_size=25, resume=True)
            assert backend.row_counts == clean_counts
            manifest = backend.load_manifest()
            assert manifest is not None and manifest.complete
        assert (self._table_digests(crashed, schema)
                == self._table_digests(clean, schema))

    def test_default_reload_rolls_back_cleanly(self, dblp_data, tmp_path):
        schema, docs = self._schema(dblp_data)
        clean, crashed = tmp_path / "clean.db", tmp_path / "crashed.db"
        with SQLiteBackend(str(clean)) as backend:
            backend.load(schema, docs)
        self._crash_load(crashed, schema, docs)
        with SQLiteBackend(str(crashed)) as backend:
            backend.load(schema, docs)  # no resume: rollback + reload
            manifest = backend.load_manifest()
            assert manifest is not None and manifest.complete
        assert (self._table_digests(crashed, schema)
                == self._table_digests(clean, schema))

    def test_resume_refuses_a_different_schema(self, dblp_data, tmp_path):
        schema, docs = self._schema(dblp_data)
        tree, _ = dblp_data
        other = derive_schema(fully_split(tree))
        path = tmp_path / "crashed.db"
        self._crash_load(path, schema, docs)
        with SQLiteBackend(str(path)) as backend:
            with pytest.raises(BackendError, match="different mapped"):
                backend.load(other, docs, resume=True)

    def test_append_and_resume_are_exclusive(self, dblp_data):
        schema, docs = self._schema(dblp_data)
        with SQLiteBackend() as backend:
            with pytest.raises(BackendError, match="mutually exclusive"):
                backend.load(schema, docs, append=True, resume=True)

    def test_interrupted_append_load_is_refused(self, dblp_data, tmp_path):
        from repro.errors import InjectedFault
        from repro.resilience import NULL_PLAN, install_fault_plan
        schema, docs = self._schema(dblp_data)
        path = tmp_path / "appended.db"
        with SQLiteBackend(str(path)) as backend:
            backend.load(schema, docs)
        install_fault_plan("backend.load.batch:1:fatal:0:2")
        backend = SQLiteBackend(str(path))
        with pytest.raises(InjectedFault):
            backend.load(schema, docs, batch_size=40, txn_rows=40,
                         append=True)
        backend.close()
        install_fault_plan(NULL_PLAN)
        with SQLiteBackend(str(path)) as backend:
            with pytest.raises(BackendError, match="append-load"):
                backend.load(schema, docs)

    def test_busy_error_classification(self, dblp_data):
        from repro.backends import BackendBusyError
        assert issubclass(BackendBusyError, BackendError)
        assert BackendBusyError("x").retryable is True
