"""Smoke tests for the experiment drivers (tiny scale).

The full-shape assertions live in ``benchmarks/``; these tests verify
the drivers run end to end and produce structurally sane output fast.
"""

import pytest

from repro.experiments import (DatasetBundle, characterize,
                               compare_algorithms, fig7_table, fig8_tables,
                               fig9_tables, format_series, format_table,
                               run_fig9, run_motivating_example,
                               tuned_hybrid_baseline)


@pytest.fixture(scope="module")
def tiny_dblp():
    return DatasetBundle.dblp(scale=250, seed=23)


@pytest.fixture(scope="module")
def tiny_movie():
    return DatasetBundle.movie(scale=250, seed=23)


class TestReporting:
    def test_format_table(self):
        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", 0.001]],
                            note="n")
        assert "== T ==" in text
        assert "note: n" in text
        assert "2.50" in text

    def test_format_series(self):
        text = format_series("S", "x", {"s1": {"w1": 1.0, "w2": 2.0},
                                        "s2": {"w1": 3.0}})
        assert "w1" in text and "s2" in text


class TestHarness:
    def test_bundles_carry_stats(self, tiny_dblp):
        assert tiny_dblp.stats.total_elements > 0
        assert tiny_dblp.tree.root.name == "dblp"

    def test_baseline_is_measurable(self, tiny_dblp):
        workload = tiny_dblp.workload_generator(seed=1).generate(3)
        baseline = tuned_hybrid_baseline(tiny_dblp, workload)
        assert baseline.measured_cost > 0
        assert baseline.estimated_cost > 0

    def test_characterize(self, tiny_dblp, tiny_movie):
        dblp = characterize(tiny_dblp)
        movie = characterize(tiny_movie)
        assert dblp.transformations > dblp.non_subsumed > 0
        assert movie.repetitions >= 2
        assert dblp.shared_types >= 2


class TestDrivers:
    def test_motivating_example_shape(self, tiny_dblp):
        result = run_motivating_example(tiny_dblp)
        assert result.mapping2_tuned < result.mapping1_tuned
        assert len(result.rows()) == 2

    def test_comparison_runs_all_algorithms(self, tiny_dblp):
        workloads = [tiny_dblp.workload_generator(seed=2).generate(3)]
        comparison = compare_algorithms(tiny_dblp, workloads,
                                        naive_max_rounds=1)
        algorithms = {run.algorithm for run in comparison.runs}
        assert algorithms == {"greedy", "naive-greedy", "two-step"}
        assert comparison.fig4()
        assert comparison.fig5()
        assert comparison.fig6()

    def test_naive_skipped_on_large_workloads(self, tiny_dblp):
        workloads = [tiny_dblp.workload_generator(seed=3).generate(4)]
        comparison = compare_algorithms(
            tiny_dblp, workloads, naive_max_queries=2, naive_max_rounds=1)
        assert "naive-greedy" not in {r.algorithm for r in comparison.runs}

    def test_fig9_driver(self, tiny_dblp):
        workloads = [tiny_dblp.workload_generator(seed=4).generate(3)]
        rows = run_fig9(tiny_dblp, workloads)
        assert len(rows) == 1
        assert rows[0].speedup > 0
        assert fig9_tables(rows, "DBLP")
