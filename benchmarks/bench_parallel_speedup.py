"""Serial vs. parallel candidate costing, and warm-cache reruns.

Measures the two claims the evaluation engine makes
(docs/performance.md):

* a greedy search at ``jobs=4`` produces the *identical* DesignResult
  as the serial run, in less wall-clock time on multi-core hardware
  (the speedup assertion is gated on ``os.cpu_count() >= 4`` — on
  fewer cores the parallel run pays pool overhead for no gain, and the
  numbers are recorded as-is);
* a rerun of the same search against a warm persistent cache performs
  **zero** exact evaluations.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_parallel_speedup.py``);
* as a script — ``python benchmarks/bench_parallel_speedup.py
  [--smoke]`` — where ``--smoke`` shrinks the dataset so CI can
  exercise the parallel path and the cache in seconds (identity and
  zero-evaluation checks still assert; the speedup is only recorded).
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.experiments import DatasetBundle
from repro.search import EvaluationCache, GreedySearch, mapping_digest

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1200"))
QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "10"))


def _fingerprint(result):
    return (mapping_digest(result.mapping), tuple(result.applied),
            result.estimated_cost, result.configuration.describe())


def _timed_search(bundle, workload, jobs=None, cache=None):
    kwargs = {"jobs": jobs}
    if cache is not None:
        kwargs["cache"] = cache
    search = GreedySearch(bundle.tree, workload, bundle.stats,
                          bundle.storage_bound, **kwargs)
    start = time.perf_counter()
    result = search.run()
    return result, time.perf_counter() - start


def run_speedup(scale, queries, jobs=4, emit=print):
    """Serial vs. ``jobs``-way greedy on DBLP (the larger dataset).

    Asserts result identity; returns the measured speedup factor.
    """
    bundle = DatasetBundle.dblp(scale=scale)
    workload = bundle.workload_generator(seed=41).generate(queries)
    serial, t_serial = _timed_search(bundle, workload)
    parallel, t_parallel = _timed_search(bundle, workload, jobs=jobs)
    assert _fingerprint(parallel) == _fingerprint(serial), \
        "parallel run diverged from serial"
    speedup = t_serial / max(t_parallel, 1e-9)
    emit(f"BENCH parallel-speedup dataset=DBLP scale={scale} "
         f"queries={queries} cpus={os.cpu_count()} jobs={jobs} "
         f"serial={t_serial:.2f}s parallel={t_parallel:.2f}s "
         f"speedup={speedup:.2f}x")
    return speedup


def run_warm_cache(scale, queries, cache_root, emit=print):
    """Cold-then-warm greedy against a persistent cache directory.

    Asserts the warm run performs zero evaluations and returns the
    identical result; returns (cold time, warm time).
    """
    bundle = DatasetBundle.dblp(scale=scale)
    workload = bundle.workload_generator(seed=41).generate(queries)
    cold, t_cold = _timed_search(bundle, workload,
                                 cache=EvaluationCache(cache_root))
    warm, t_warm = _timed_search(bundle, workload,
                                 cache=EvaluationCache(cache_root))
    assert warm.counters.mappings_evaluated == 0, \
        f"warm rerun evaluated {warm.counters.mappings_evaluated} mappings"
    assert _fingerprint(warm) == _fingerprint(cold), \
        "warm-cache run diverged from cold"
    emit(f"BENCH warm-cache dataset=DBLP scale={scale} queries={queries} "
         f"cold={t_cold:.2f}s warm={t_warm:.2f}s "
         f"warm_hits={warm.counters.persistent_cache_hits} "
         f"entries={len(EvaluationCache(cache_root).entries())}")
    return t_cold, t_warm


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_parallel_identical_and_faster(emit):
    speedup = run_speedup(SCALE, QUERIES, emit=emit)
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.5, \
            f"expected >=1.5x speedup at 4 jobs, got {speedup:.2f}x"


def test_warm_cache_rerun_is_free(emit, tmp_path):
    t_cold, t_warm = run_warm_cache(SCALE, QUERIES, tmp_path, emit=emit)
    assert t_warm < t_cold


# ----------------------------------------------------------------------
# Script entry point (CI smoke mode)
# ----------------------------------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small scale: exercise parallel + cache "
                             "paths quickly; record (don't assert) the "
                             "speedup")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)
    scale = args.scale or (150 if args.smoke else SCALE)
    queries = args.queries or (4 if args.smoke else QUERIES)
    speedup = run_speedup(scale, queries, jobs=args.jobs)
    with tempfile.TemporaryDirectory() as cache_root:
        run_warm_cache(scale, queries, cache_root)
    if not args.smoke and (os.cpu_count() or 1) >= 4 and speedup < 1.5:
        raise SystemExit(
            f"expected >=1.5x speedup at {args.jobs} jobs, "
            f"got {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
