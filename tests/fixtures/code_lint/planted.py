"""Planted code-lint violations — one per DET/CONC/RES family.

This file is never imported by the package or collected by pytest; the
``code-lint`` CI job and ``tests/test_check_code.py`` lint it with
``repro check --code --path`` and assert that each planted violation
comes back. If a pass regresses into silence, the gate fails.
"""

import random
import sqlite3
from concurrent.futures import ThreadPoolExecutor


def planted_det() -> float:
    # DET001: draws from the shared, unseeded module-level generator.
    return random.random()


class PlantedWorker:
    """Carries the CONC001 and CONC002 plants."""

    def __init__(self) -> None:
        self.counter = 0
        self.conn = sqlite3.connect(":memory:")

    def work(self) -> int:
        # CONC001: shared write, no lock, reachable from submit().
        self.counter += 1
        # CONC002: the __init__-thread connection used on a pool thread.
        self.conn.execute("SELECT 1")
        return self.counter

    def run(self) -> None:
        with ThreadPoolExecutor(max_workers=2) as pool:
            pool.submit(self.work)


def planted_res(path: str) -> str:
    try:
        # RES002: no ``with``, never closed, never handed off.
        handle = open(path)
        return handle.read()
    except Exception:
        # RES001: swallowed — no re-raise, no note_suppressed.
        return ""
