"""XML document model, parser, and serializer (built from scratch)."""

from .doc import Document, Element, LazyElement, count_elements, element
from .parser import parse, parse_file
from .writer import escape_attribute, escape_text, serialize

__all__ = [
    "Document",
    "Element",
    "LazyElement",
    "element",
    "count_elements",
    "parse",
    "parse_file",
    "serialize",
    "escape_text",
    "escape_attribute",
]
