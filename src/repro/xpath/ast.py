"""AST for the XPath subset used throughout the paper.

The subset (paper Section 2.1) is: child (``/``) and descendant (``//``)
axes, at most one value predicate per step (``[path op literal]`` or an
existence test ``[path]``), and a trailing union of projection paths
``/(a | b | c)``.

Example from the paper::

    //movie[title = "Titanic"]/(aka_title | avg_rating)

parses into a context path ``//movie`` whose step carries the selection
predicate, plus two projection paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Axis(enum.Enum):
    CHILD = "/"
    DESCENDANT = "//"


class CompareOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def compare(self, left: str, right: str) -> bool:
        """Compare two string values, numerically when both parse."""
        try:
            a, b = float(left), float(right)
        except (TypeError, ValueError):
            a, b = left, right  # type: ignore[assignment]
        if self == CompareOp.EQ:
            return a == b
        if self == CompareOp.NE:
            return a != b
        if self == CompareOp.LT:
            return a < b
        if self == CompareOp.LE:
            return a <= b
        if self == CompareOp.GT:
            return a > b
        return a >= b


@dataclass(frozen=True)
class Step:
    """One location step: an axis plus an element name test."""

    axis: Axis
    name: str

    def __str__(self) -> str:
        return f"{self.axis.value}{self.name}"


@dataclass(frozen=True)
class Predicate:
    """``[path op "literal"]`` or the existence test ``[path]``.

    ``path`` is relative to the step the predicate is attached to. The
    paper calls it the *selection path*.
    """

    path: tuple[Step, ...]
    op: CompareOp | None = None
    value: str | None = None

    def __str__(self) -> str:
        inner = "".join(str(s) for s in self.path).lstrip("/")
        if self.path and self.path[0].axis == Axis.DESCENDANT:
            inner = "//" + inner
        if self.op is None:
            return f"[{inner}]"
        return f'[{inner} {self.op.value} "{self.value}"]'


@dataclass(frozen=True)
class XPathQuery:
    """A full query: context path (+ optional predicate) and projections.

    ``steps``
        The context path from the document root. At most one step
        carries a predicate (index given by ``predicate_step``).
    ``projections``
        Relative paths returned by the query; empty means the context
        elements themselves are returned.
    """

    steps: tuple[Step, ...]
    predicate: Predicate | None = None
    predicate_step: int | None = None
    projections: tuple[tuple[Step, ...], ...] = ()

    def __post_init__(self) -> None:
        if (self.predicate is None) != (self.predicate_step is None):
            raise ValueError("predicate and predicate_step must be set together")

    def __str__(self) -> str:
        parts: list[str] = []
        for i, step in enumerate(self.steps):
            parts.append(str(step))
            if self.predicate is not None and i == self.predicate_step:
                parts.append(str(self.predicate))
        if self.projections:
            inner = " | ".join(
                "".join(str(s) for s in path).lstrip("/")
                for path in self.projections)
            parts.append(f"/({inner})")
        return "".join(parts)

    @property
    def projection_names(self) -> tuple[str, ...]:
        """Last element name of each projection path (for reporting)."""
        return tuple(path[-1].name for path in self.projections)
