"""Schema-tree node model.

Following the paper (Section 2), an XSD schema is represented as a tree
``T(V, E, A)`` whose nodes are type constructors:

* ``TAG`` — an element name,
* ``SEQUENCE`` — ordered content (``,``),
* ``REPETITION`` — ``*`` / ``+`` / bounded repetition (maxOccurs > 1),
* ``OPTION`` — ``?`` (minOccurs = 0, maxOccurs = 1),
* ``CHOICE`` — union (``|``),
* ``SIMPLE`` — a base type such as string or integer.

``A`` is the set of table annotations. In this implementation the *tree
structure is immutable*; annotations and the transformation attributes
(repetition-split counts, union-distribution schemes) live in
:class:`repro.mapping.Mapping` objects keyed by node id. This makes every
schema transformation a cheap dictionary edit and makes mappings hashable,
which the search algorithm relies on to avoid re-exploring duplicates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeKind(enum.Enum):
    """The type constructors of the schema tree.

    The first six follow the paper's Section 2. ``ATTRIBUTE`` extends
    the model to XML attributes (``xs:attribute``): a named simple value
    attached to a TAG node, at most one occurrence, never repeated —
    always mapped to an inline column of the owning table.
    """

    TAG = "tag"
    SEQUENCE = "sequence"
    REPETITION = "repetition"
    OPTION = "option"
    CHOICE = "choice"
    SIMPLE = "simple"
    ATTRIBUTE = "attribute"


class BaseType(enum.Enum):
    """XSD base types we support, with their SQL counterparts."""

    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def sql_name(self) -> str:
        return {
            BaseType.STRING: "VARCHAR",
            BaseType.INTEGER: "INTEGER",
            BaseType.DECIMAL: "DECIMAL",
            BaseType.DATE: "DATE",
            BaseType.BOOLEAN: "BOOLEAN",
        }[self]


# maxOccurs="unbounded" is modelled as this sentinel.
UNBOUNDED = -1


@dataclass
class SchemaNode:
    """One node of the schema tree.

    Attributes
    ----------
    node_id:
        Dense integer id, stable for the lifetime of the tree. All
        mapping-level attributes are keyed by it.
    kind:
        The type constructor.
    name:
        Element name for ``TAG`` nodes; base-type name for ``SIMPLE``
        nodes; empty otherwise.
    base_type:
        Set for ``SIMPLE`` nodes only.
    min_occurs / max_occurs:
        Occurrence bounds for ``REPETITION`` nodes (``max_occurs`` may be
        :data:`UNBOUNDED`). ``OPTION`` nodes are implicitly (0, 1).
    annotation:
        The *initial* table annotation from the schema document, or
        ``None``. Mappings start from these and then override them.
    """

    node_id: int
    kind: NodeKind
    name: str = ""
    base_type: BaseType | None = None
    min_occurs: int = 1
    max_occurs: int = 1
    annotation: str | None = None
    parent_id: int | None = None
    child_ids: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.kind.value
        return f"<SchemaNode #{self.node_id} {self.kind.value} {label!r}>"
