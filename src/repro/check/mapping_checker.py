"""Invariant checks for XML-to-relational mappings and derived schemas.

Three entry points:

* :func:`check_mapping` — structural validity of a :class:`Mapping`
  (annotation placement, split/distribution legality) via the model's
  own ``validate()``, surfaced as a MAP001 finding instead of an
  exception,
* :func:`check_schema` — losslessness and referential integrity of a
  derived :class:`MappedSchema`: every XSD value node stored exactly
  once (MAP002), ID/PID key columns present with consistent types
  (MAP003), parent links reference existing table groups and every
  group is reachable from a root group (MAP004), partitions consistent
  with their group (MAP005), leaf storage references existing
  groups/columns (MAP006),
* :func:`check_transform` — a transformation preserved total value-node
  coverage (MAP007), compared before/after each rewrite during search.
"""

from __future__ import annotations

from ..engine import SQLType
from ..errors import MappingError
from ..mapping.model import Mapping
from ..mapping.relschema import ID_COLUMN, PID_COLUMN, MappedSchema
from .findings import Findings


def check_mapping(mapping: Mapping) -> Findings:
    """MAP001: the mapping passes the model's structural validation."""
    findings = Findings()
    try:
        mapping.validate()
    except MappingError as exc:
        findings.add("MAP001", str(exc), "mapping")
    return findings


def value_coverage(schema: MappedSchema) -> frozenset[int]:
    """IDs of XSD value nodes that have at least one storage location."""
    covered = set()
    for leaf_id, storage in schema.leaf_storage.items():
        if storage.is_inlined or storage.is_split or \
                (storage.has_own_table and storage.value_column is not None):
            covered.add(leaf_id)
    return frozenset(covered)


def check_schema(schema: MappedSchema) -> Findings:
    """MAP002..MAP006 over a derived relational schema."""
    findings = Findings()
    _check_coverage(schema, findings)
    _check_keys(schema, findings)
    _check_parent_links(schema, findings)
    _check_partitions(schema, findings)
    _check_leaf_storage(schema, findings)
    return findings


def check_transform(before: MappedSchema, after: MappedSchema,
                    transform: str = "") -> Findings:
    """MAP007: the rewrite neither dropped nor invented value nodes."""
    findings = Findings()
    before_cov = value_coverage(before)
    after_cov = value_coverage(after)
    name = transform or "transformation"
    lost = sorted(before_cov - after_cov)
    gained = sorted(after_cov - before_cov)
    if lost:
        findings.add(
            "MAP007", f"{name} lost storage for value node(s) {lost}",
            "transform")
    if gained:
        findings.add(
            "MAP007", f"{name} invented storage for value node(s) {gained} "
                      f"that the source mapping did not cover", "transform")
    return findings


# ----------------------------------------------------------------------
# check_schema passes
# ----------------------------------------------------------------------
def _check_coverage(schema: MappedSchema, findings: Findings) -> None:
    tree = schema.tree
    covered = value_coverage(schema)
    for node in tree.iter_nodes():
        if not tree.is_value_node(node):
            continue
        if node.node_id not in covered:
            findings.add(
                "MAP002", f"value node #{node.node_id} <{node.name}> has no "
                          f"relational storage; the mapping is lossy",
                f"node[{node.node_id}]")


def _check_keys(schema: MappedSchema, findings: Findings) -> None:
    for annotation, group in schema.groups.items():
        by_name = {c.name: c for c in group.columns}
        for key, nullable_ok in ((ID_COLUMN, False), (PID_COLUMN, True)):
            spec = by_name.get(key)
            if spec is None:
                findings.add(
                    "MAP003", f"table group {annotation!r} lacks the "
                              f"{key} key column", f"group[{annotation}]")
                continue
            if spec.sql_type is not SQLType.INTEGER:
                findings.add(
                    "MAP003", f"key column {key} of group {annotation!r} "
                              f"has type {spec.sql_type.value}, expected "
                              f"INTEGER", f"group[{annotation}]")
            if not nullable_ok and spec.nullable:
                findings.add(
                    "MAP003", f"key column {key} of group {annotation!r} "
                              f"must not be nullable", f"group[{annotation}]")


def _check_parent_links(schema: MappedSchema, findings: Findings) -> None:
    groups = schema.groups
    reachable: set[str] = set()
    for annotation, group in groups.items():
        parent = group.parent_annotation
        if parent is None:
            reachable.add(annotation)
            continue
        if parent not in groups:
            findings.add(
                "MAP004", f"group {annotation!r} links to non-existent "
                          f"parent group {parent!r}", f"group[{annotation}]")
    # Orphan detection: every group must reach a root group by following
    # parent links (a disconnected group would never be joined to).
    changed = True
    while changed:
        changed = False
        for annotation, group in groups.items():
            if annotation in reachable:
                continue
            if group.parent_annotation in reachable:
                reachable.add(annotation)
                changed = True
    for annotation in sorted(set(groups) - reachable):
        if groups[annotation].parent_annotation in groups:
            findings.add(
                "MAP004", f"group {annotation!r} is orphaned: its parent "
                          f"chain never reaches a root group",
                f"group[{annotation}]")


def _check_partitions(schema: MappedSchema, findings: Findings) -> None:
    seen_tables: dict[str, str] = {}
    for annotation, group in schema.groups.items():
        if not group.partitions:
            findings.add(
                "MAP005", f"group {annotation!r} has no partitions",
                f"group[{annotation}]")
            continue
        column_names = {c.name for c in group.columns}
        for partition in group.partitions:
            owner = seen_tables.setdefault(partition.table_name, annotation)
            if owner != annotation:
                findings.add(
                    "MAP005", f"table {partition.table_name!r} appears in "
                              f"groups {owner!r} and {annotation!r}",
                    f"table[{partition.table_name}]")
            unknown = [n for n in partition.column_names
                       if n not in column_names]
            if unknown:
                findings.add(
                    "MAP005", f"partition {partition.table_name!r} lists "
                              f"columns {unknown} absent from its group",
                    f"table[{partition.table_name}]")
            for key in (ID_COLUMN, PID_COLUMN):
                if key not in partition.column_names:
                    findings.add(
                        "MAP005", f"partition {partition.table_name!r} "
                                  f"lacks the {key} key column",
                        f"table[{partition.table_name}]")


def _check_leaf_storage(schema: MappedSchema, findings: Findings) -> None:
    for leaf_id, storage in sorted(schema.leaf_storage.items()):
        where = f"leaf[{leaf_id}]"
        if storage.inline_annotation is not None:
            group = schema.groups.get(storage.inline_annotation)
            if group is None:
                findings.add(
                    "MAP006", f"leaf #{leaf_id} inlined into non-existent "
                              f"group {storage.inline_annotation!r}", where)
            else:
                names = {c.name for c in group.columns}
                for column in ((storage.column,) if storage.column
                               else storage.split_columns):
                    if column not in names:
                        findings.add(
                            "MAP006", f"leaf #{leaf_id} claims column "
                                      f"{column!r} missing from group "
                                      f"{group.annotation!r}", where)
        if storage.own_annotation is not None:
            group = schema.groups.get(storage.own_annotation)
            if group is None:
                findings.add(
                    "MAP006", f"leaf #{leaf_id} claims its own table in "
                              f"non-existent group "
                              f"{storage.own_annotation!r}", where)
            elif storage.value_column is not None and \
                    storage.value_column not in {c.name
                                                 for c in group.columns}:
                findings.add(
                    "MAP006", f"leaf #{leaf_id} value column "
                              f"{storage.value_column!r} missing from group "
                              f"{group.annotation!r}", where)
