"""Execution backends: the in-memory engine and real DBMSs behind one
protocol, plus differential validation and cost-model calibration.

See docs/backends.md.
"""

from .base import EngineBackend, QueryTiming, SQLBackend, timed_runs
from .calibrate import (CalibrationReport, DesignPoint, QueryPoint,
                        logical_only_design, measure_on_sqlite,
                        run_calibration, spearman)
from .compare import (CheckResult, CompareReport, backend_factory,
                      compare_datasets, known_backends)
from .dbms import RelationalBackend
from .dialect import (DUCKDB, SQLITE, Dialect, DialectError, DuckDBDialect,
                      SQLiteDialect, create_index_sql, create_table_sql,
                      create_view_table_sql, dialect_for, insert_sql,
                      quote_identifier, render_query, sqlite_type)
from .diff import (DiffReport, Divergence, compare_backends, multiset_diff,
                   normalize_row, validate_design)
from .duckdb import DuckDBBackend, duckdb_available
from .sqlite import (MANIFEST_TABLE, BackendBusyError, BackendError,
                     LoadManifest, SQLiteBackend)

__all__ = [
    "SQLBackend",
    "EngineBackend",
    "RelationalBackend",
    "SQLiteBackend",
    "DuckDBBackend",
    "duckdb_available",
    "QueryTiming",
    "timed_runs",
    "BackendError",
    "BackendBusyError",
    "LoadManifest",
    "MANIFEST_TABLE",
    "Dialect",
    "SQLiteDialect",
    "DuckDBDialect",
    "SQLITE",
    "DUCKDB",
    "dialect_for",
    "DialectError",
    "render_query",
    "quote_identifier",
    "sqlite_type",
    "create_table_sql",
    "create_index_sql",
    "create_view_table_sql",
    "insert_sql",
    "DiffReport",
    "Divergence",
    "compare_backends",
    "validate_design",
    "multiset_diff",
    "normalize_row",
    "CheckResult",
    "CompareReport",
    "compare_datasets",
    "backend_factory",
    "known_backends",
    "CalibrationReport",
    "DesignPoint",
    "QueryPoint",
    "run_calibration",
    "measure_on_sqlite",
    "logical_only_design",
    "spearman",
]
