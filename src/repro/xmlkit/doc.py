"""A small XML document object model.

The model is intentionally minimal: elements, attributes, and text. It is
the substrate both for the XPath reference evaluator and for the shredder
that loads XML into the relational engine. Mixed content is supported
(text interleaved with child elements) but the shredding layer only uses
element/attribute/text-leaf structure, matching the paper's data model.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Element:
    """An XML element node.

    Parameters
    ----------
    tag:
        The element name.
    attributes:
        Mapping of attribute name to string value.
    """

    __slots__ = ("tag", "attributes", "_children", "_texts", "parent")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None):
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        # _children[i] is preceded by _texts[i]; _texts has one extra
        # trailing entry so text after the last child is representable.
        self._children: list[Element] = []
        self._texts: list[str] = [""]
        self.parent: Element | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, child: "Element") -> "Element":
        """Attach ``child`` as the last child element and return it."""
        child.parent = self
        self._children.append(child)
        self._texts.append("")
        return child

    def add_text(self, text: str) -> None:
        """Append character data at the current position."""
        self._texts[-1] += text

    def make_child(self, tag: str, text: str | None = None,
                   attributes: dict[str, str] | None = None) -> "Element":
        """Create, attach, and return a child element.

        Convenience used heavily by the synthetic data generators.
        """
        child = Element(tag, attributes)
        if text is not None:
            child.add_text(text)
        return self.append(child)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def children(self) -> tuple["Element", ...]:
        """Child elements, in document order."""
        return tuple(self._children)

    def find_all(self, tag: str) -> list["Element"]:
        """Direct children with the given tag."""
        return [c for c in self._children if c.tag == tag]

    def find(self, tag: str) -> "Element | None":
        """First direct child with the given tag, or ``None``."""
        for child in self._children:
            if child.tag == tag:
                return child
        return None

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iterator over this element and descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def descendants(self, tag: str | None = None) -> Iterator["Element"]:
        """All strict descendants, optionally filtered by tag."""
        for node in self.iter():
            if node is self:
                continue
            if tag is None or node.tag == tag:
                yield node

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """Concatenated character data directly inside this element."""
        return "".join(self._texts)

    @property
    def text_segments(self) -> tuple[str, ...]:
        """Raw text segments interleaved with children (for serialization)."""
        return tuple(self._texts)

    def string_value(self) -> str:
        """XPath string-value: all descendant text concatenated in order."""
        parts: list[str] = []

        def walk(el: Element) -> None:
            for i, child in enumerate(el._children):
                parts.append(el._texts[i])
                walk(child)
            parts.append(el._texts[len(el._children)])

        walk(self)
        return "".join(parts)

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Element {self.tag!r} children={len(self._children)}>"

    def __iter__(self) -> Iterator["Element"]:
        return iter(self._children)

    def __len__(self) -> int:
        return len(self._children)


class Document:
    """An XML document: a root element plus optional declaration info."""

    __slots__ = ("root", "version", "encoding")

    def __init__(self, root: Element, version: str = "1.0", encoding: str = "UTF-8"):
        self.root = root
        self.version = version
        self.encoding = encoding

    def iter(self) -> Iterator[Element]:
        """Depth-first pre-order iterator over all elements."""
        return self.root.iter()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Document root={self.root.tag!r}>"


class LazyElement(Element):
    """An element whose children are *generated*, not stored.

    The substrate of the streaming data plane (docs/scaling.md): a
    synthetic data set at 10^6 publications cannot be materialized as
    one giant child list, so the root element holds a zero-argument
    ``factory`` returning a fresh iterator of child elements instead.
    Every iteration (``for child in el``) calls the factory again, so a
    deterministic factory (seeded RNG created inside it) makes the
    element re-iterable with identical content while only one child
    subtree is alive at a time.

    Supported: streaming iteration, lazy pre-order ``iter()``,
    ``descendants``, ``find``/``find_all`` (O(n) scans), ``len`` and
    ``string_value`` (O(n) streaming). Not supported: ``append`` /
    ``make_child`` / ``add_text`` — a lazy element's content comes from
    its factory only.
    """

    __slots__ = ("_factory",)

    def __init__(self, tag: str, factory,
                 attributes: dict[str, str] | None = None):
        super().__init__(tag, attributes)
        self._factory = factory

    # -- construction is disabled: content comes from the factory ------
    def append(self, child: "Element") -> "Element":
        raise TypeError("LazyElement content comes from its factory; "
                        "append() is not supported")

    def add_text(self, text: str) -> None:
        raise TypeError("LazyElement content comes from its factory; "
                        "add_text() is not supported")

    # -- streaming navigation ------------------------------------------
    def __iter__(self) -> Iterator["Element"]:
        for child in self._factory():
            child.parent = self
            yield child

    def __len__(self) -> int:
        return sum(1 for _ in self)

    @property
    def children(self) -> tuple["Element", ...]:
        """Materializes every child — defeats streaming; prefer iteration."""
        return tuple(self)

    def iter(self) -> Iterator["Element"]:
        yield self
        for child in self:
            yield from child.iter()

    def find_all(self, tag: str) -> list["Element"]:
        return [c for c in self if c.tag == tag]

    def find(self, tag: str) -> "Element | None":
        for child in self:
            if child.tag == tag:
                return child
        return None

    @property
    def text(self) -> str:
        return ""

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LazyElement {self.tag!r}>"


def element(tag: str, *children: "Element | str",
            attributes: dict[str, str] | None = None) -> Element:
    """Functional helper to build element trees in tests and examples.

    Strings become text content; elements become children, in order::

        element("movie", element("title", "Titanic"), element("year", "1997"))
    """
    el = Element(tag, attributes)
    for child in children:
        if isinstance(child, str):
            el.add_text(child)
        else:
            el.append(child)
    return el


def count_elements(nodes: Iterable[Element]) -> int:
    """Total number of elements in the given forests (used by stats)."""
    return sum(1 for root in nodes for _ in root.iter())
