"""The Naive-Greedy baseline (paper Section 5.1.1).

A straightforward extension of the logical-design greedy of [5], [18] to
the joint space: each round it enumerates *every* applicable
transformation (subsumed ones included), calls the physical design tool
for each resulting mapping, applies the best, and stops when no
transformation reduces the estimated workload cost.

No candidate selection, no candidate merging, no cost derivation, no
duplicate pruning — this is the algorithm whose running time the paper
reports as "more than a day" on DBLP, against which Greedy's two-orders-
of-magnitude speed-up is measured (Figs. 5 and 6).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from ..errors import CheckpointError, MappingError
from ..mapping import (CollectedStats, Mapping, enumerate_transformations,
                       hybrid_inlining)
from ..obs import NullTracer, Tracer, get_tracer
from ..resilience import CheckpointStore, note_suppressed
from ..workload import Workload
from ..xsd import SchemaTree
from .cache import problem_digest
from .evaluator import EvaluatedMapping, MappingEvaluator, mapping_digest
from .result import DesignResult, SearchCounters, Stopwatch


class NaiveGreedySearch:
    """Exhaustive-per-round greedy over the full transformation space."""

    def __init__(self, tree: SchemaTree, workload: Workload,
                 collected: CollectedStats,
                 storage_bound: int | None = None,
                 base_mapping: Mapping | None = None,
                 default_split_count: int = 5,
                 max_rounds: int = 25,
                 include_subsumed: bool = True,
                 tracer: Tracer | NullTracer | None = None,
                 jobs: int | None = None,
                 checkpoint: CheckpointStore | str | Path | None = None,
                 checkpoint_every: int = 1,
                 resume: bool = False):
        self.tree = tree
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.base_mapping = base_mapping or hybrid_inlining(tree)
        self.default_split_count = default_split_count
        self.max_rounds = max_rounds
        # include_subsumed=False gives the intermediate Fig. 7 variant:
        # the naive per-round enumeration, restricted to non-subsumed
        # transformations (subsumed-pruning without the other rules).
        self.include_subsumed = include_subsumed
        self.tracer = tracer if tracer is not None else get_tracer()
        self.jobs = jobs
        if isinstance(checkpoint, (str, Path)):
            checkpoint = CheckpointStore(checkpoint, tracer=self.tracer)
        self.checkpoint = checkpoint
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.resume = resume
        self.counters = SearchCounters()

    def run(self) -> DesignResult:
        with Stopwatch(self.counters):
            with self.tracer.span("naive-greedy",
                                  workload=self.workload.name,
                                  queries=len(self.workload)) as span:
                result = self._run()
        if self.tracer.enabled:
            span.set("rounds", result.rounds)
            span.set("estimated_cost", result.estimated_cost)
            result.trace = span
        return result

    def _check_transform(self, transformation, current: EvaluatedMapping,
                         evaluated: EvaluatedMapping) -> None:
        """Debug-mode assertion: the rewrite kept the mapping lossless."""
        from ..check import check_transform, checks_enabled, enforce

        if checks_enabled():
            enforce(check_transform(current.schema, evaluated.schema,
                                    str(transformation)),
                    self.tracer, context=f"transform:{transformation}")

    def _run(self) -> DesignResult:
        # Naive-Greedy does not deduplicate mappings: the cache is off.
        evaluator = MappingEvaluator(self.workload, self.collected,
                                     self.storage_bound, use_cache=False,
                                     counters=self.counters,
                                     tracer=self.tracer, jobs=self.jobs)
        try:
            return self._run_with(evaluator)
        finally:
            evaluator.close()

    # ------------------------------------------------------------------
    # Checkpoint / resume (mirrors GreedySearch; see docs/resilience.md)
    # ------------------------------------------------------------------
    def _problem_key(self) -> str:
        settings = (self.default_split_count, self.max_rounds,
                    self.include_subsumed)
        return "|".join([
            problem_digest(self.workload, self.collected, self.storage_bound),
            mapping_digest(self.base_mapping), repr(settings)])

    def _save_checkpoint(self, evaluator: MappingEvaluator, rounds: int,
                         current: EvaluatedMapping,
                         applied: list[str]) -> None:
        if self.checkpoint is None:
            return
        state = {
            "algorithm": "naive-greedy",
            "problem_key": self._problem_key(),
            "counters": {f.name: getattr(self.counters, f.name)
                         for f in dataclasses.fields(self.counters)},
            "advisor_costs": evaluator._advisor_cost_cache,
            "rounds": rounds,
            "current": current,
            "applied": applied,
        }
        if self.checkpoint.save(state):
            self.counters.checkpoints_written += 1
            self.tracer.event("checkpoint_saved", rounds=rounds)

    def _restore(self, evaluator: MappingEvaluator) -> dict | None:
        if self.checkpoint is None or not self.resume:
            return None
        state = self.checkpoint.load()
        if state is None:
            return None
        if state.get("algorithm") != "naive-greedy":
            raise CheckpointError(
                f"checkpoint at {self.checkpoint.path} belongs to a "
                f"{state.get('algorithm')!r} search, not naive-greedy")
        if state.get("problem_key") != self._problem_key():
            raise CheckpointError(
                f"checkpoint at {self.checkpoint.path} was written for a "
                "different problem (workload, statistics, bound, base "
                "mapping, or search settings changed)")
        for name, value in state["counters"].items():
            if hasattr(self.counters, name):
                setattr(self.counters, name, value)
        evaluator._advisor_cost_cache = state["advisor_costs"]
        self.tracer.event("checkpoint_resumed", rounds=state["rounds"])
        self.tracer.metrics("checkpoint").incr("resumes")
        return state

    def _run_with(self, evaluator: MappingEvaluator) -> DesignResult:
        resumed = self._restore(evaluator)
        if resumed is not None:
            rounds = resumed["rounds"]
            current = resumed["current"]
            applied = resumed["applied"]
        else:
            current = evaluator.evaluate(self.base_mapping)
            if current is None:
                raise RuntimeError(
                    "base mapping is infeasible for the workload")
            applied = []
            rounds = 0
        while rounds < self.max_rounds:
            if rounds % self.checkpoint_every == 0:
                self._save_checkpoint(evaluator, rounds, current, applied)
            rounds += 1
            with self.tracer.span("round", index=rounds) as round_span:
                best: tuple[float, str, EvaluatedMapping] | None = None
                transformations = enumerate_transformations(
                    current.mapping,
                    include_subsumed=self.include_subsumed,
                    default_split_count=self.default_split_count)
                enumerated = 0
                work: list[tuple[object, Mapping]] = []
                for transformation in transformations:
                    enumerated += 1
                    self.counters.transformations_searched += 1
                    try:
                        mapping = transformation.apply(current.mapping)
                    except MappingError as exc:
                        note_suppressed(exc, "naive.apply", self.tracer)
                        continue
                    work.append((transformation, mapping))
                evaluations = evaluator.evaluate_many(
                    [mapping for _, mapping in work])
                for (transformation, _), evaluated in zip(work, evaluations):
                    if evaluated is None:
                        continue
                    self._check_transform(transformation, current, evaluated)
                    if evaluated.total_cost < current.total_cost and \
                            (best is None or
                             evaluated.total_cost < best[0]):
                        best = (evaluated.total_cost, str(transformation),
                                evaluated)
                round_span.set("enumerated", enumerated)
                if best is None:
                    round_span.set("improved", False)
                    break
                _, name, evaluated = best
                current = evaluated
                applied.append(name)
                round_span.set("improved", True)
                round_span.set("winner", name)
                round_span.set("cost", evaluated.total_cost)
        return DesignResult(
            algorithm="naive-greedy",
            workload=self.workload,
            mapping=current.mapping,
            schema=current.schema,
            configuration=current.tuning.configuration,
            sql_queries=current.sql_queries,
            estimated_cost=current.total_cost,
            counters=self.counters,
            rounds=rounds,
            applied=applied,
        )
