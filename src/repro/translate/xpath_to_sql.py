"""Sorted outer-union XPath-to-SQL translation (paper Section 1.1, [21]).

Given a :class:`~repro.mapping.MappedSchema`, an XPath query becomes::

    SELECT T.ID, <inline slots>, NULL, ...      -- context branch
    FROM <context partition> T WHERE <pred>
    UNION ALL
    SELECT T.ID, NULL, ..., C.<value>           -- one branch per
    FROM <context partition> T, <child> C       -- child-table projection
    WHERE <pred> AND C.PID = T.ID
    ORDER BY 1

The translator is mapping-aware:

* repetition-split projections occupy ``k`` inline slots plus one
  overflow-branch slot (exactly the paper's Mapping 2 SQL),
* union-distributed tables produce one branch set per *relevant*
  partition — partitions whose columns cannot satisfy the predicate or
  the projection are skipped (the I/O saving the transformation exists
  to provide),
* selections on outlined/overflow leaves become correlated EXISTS
  probes, with repetition-split selections ORing the inline columns with
  the overflow probe.

Supported XPath subset (everything the paper's workloads use): child and
descendant axes, one predicate on the final context step (value
comparison or existence), union projections of leaf paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import TranslationError
from ..mapping import LeafStorage, MappedSchema, PartitionSpec, TableGroup
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp,
                      Exists, IsNull, Literal, Or, Query, Select, SelectItem,
                      TableRef, conjunction)
from ..xpath import Axis, CompareOp, Predicate, Step, XPathQuery, parse_xpath
from ..xsd import NodeKind, SchemaNode, SchemaTree

_OP_MAP = {
    CompareOp.EQ: ComparisonOp.EQ,
    CompareOp.NE: ComparisonOp.NE,
    CompareOp.LT: ComparisonOp.LT,
    CompareOp.LE: ComparisonOp.LE,
    CompareOp.GT: ComparisonOp.GT,
    CompareOp.GE: ComparisonOp.GE,
}


# ----------------------------------------------------------------------
# Step resolution over the schema tree
# ----------------------------------------------------------------------


def _region_tag_children(tree: SchemaTree, node: SchemaNode) -> list[SchemaNode]:
    """Direct TAG children (crossing constructor nodes, not TAG nodes)."""
    out: list[SchemaNode] = []

    def walk(current: SchemaNode) -> None:
        for child in tree.children(current):
            if child.kind == NodeKind.TAG:
                out.append(child)
            elif child.kind != NodeKind.SIMPLE:
                walk(child)

    walk(node)
    return out


def _tag_descendants(tree: SchemaTree, node: SchemaNode,
                     name: str) -> list[SchemaNode]:
    out: list[SchemaNode] = []
    stack = [node]
    while stack:
        current = stack.pop()
        for child in _region_tag_children(tree, current):
            if child.name == name:
                out.append(child)
            stack.append(child)
    return out


def resolve_steps(tree: SchemaTree, steps: tuple[Step, ...],
                  start: SchemaNode | None = None) -> list[SchemaNode]:
    """All TAG nodes reached by the location path.

    ``start=None`` evaluates from the virtual document node (absolute
    paths); otherwise relative to ``start``.
    """
    if start is None:
        first = steps[0]
        frontier: list[SchemaNode] = []
        if tree.root.name == first.name:
            frontier.append(tree.root)
        if first.axis == Axis.DESCENDANT:
            frontier.extend(_tag_descendants(tree, tree.root, first.name))
        rest = steps[1:]
    else:
        frontier = [start]
        rest = steps
    for step in rest:
        next_frontier: list[SchemaNode] = []
        for node in frontier:
            if step.name.startswith("@"):
                name = step.name[1:]
                holders = [node]
                if step.axis == Axis.DESCENDANT:
                    stack = [node]
                    while stack:
                        current = stack.pop()
                        kids = _region_tag_children(tree, current)
                        holders.extend(kids)
                        stack.extend(kids)
                for holder in holders:
                    next_frontier.extend(
                        a for a in tree.attributes_of(holder)
                        if a.name == name)
            elif step.axis == Axis.CHILD:
                next_frontier.extend(
                    c for c in _region_tag_children(tree, node)
                    if c.name == step.name)
            else:
                next_frontier.extend(_tag_descendants(tree, node, step.name))
        frontier = next_frontier
    # Deduplicate, preserving order.
    seen: set[int] = set()
    out = []
    for node in frontier:
        if node.node_id not in seen:
            seen.add(node.node_id)
            out.append(node)
    return out


# ----------------------------------------------------------------------
# Slot plans
# ----------------------------------------------------------------------


@dataclass
class _Slot:
    """One output column after the leading ID column."""

    label: str
    # Inline content: column name available in context partitions.
    inline_column: str | None = None
    # Child-table content: (join chain of table names, value column).
    chain: tuple[str, ...] = ()
    chain_column: str | None = None



@dataclass
class _ContextPlan:
    """Translation state for one resolved context node.

    ``owner_id`` is the annotated node whose table group holds the
    context rows (for a repetition-split leaf context this is the
    *parent* region's owner, since the first k occurrences live there).

    ``anchor`` is the node the predicate applies to. When its owner
    table differs from the context's, ``up_chain`` lists the table-group
    annotations joining the context table upward to the anchor's table
    (exclusive of the context group, inclusive of the anchor group).
    """

    node: SchemaNode
    anchor: SchemaNode
    owner_id: int
    group: TableGroup
    partitions: list[PartitionSpec]
    anchor_group: TableGroup
    up_chain: tuple[str, ...] = ()
    # True: the predicate applies to the last up_chain table; False: the
    # up_chain (if any) is a pure discrimination join for a shared
    # (type-merged) context table and the predicate stays on the context.
    anchor_on_up: bool = False
    slots: list[_Slot] = field(default_factory=list)


class Translator:
    """Translate XPath queries to SQL under one mapped schema."""

    def __init__(self, schema: MappedSchema):
        self.schema = schema
        self.tree = schema.tree

    # ------------------------------------------------------------------
    def translate(self, query: XPathQuery | str) -> Query:
        if isinstance(query, str):
            query = parse_xpath(query)
        if query.predicate is not None and \
                query.predicate_step != len(query.steps) - 1:
            # Predicate on an earlier step: resolve anchors first, then
            # the remaining steps relative to each anchor.
            anchors = resolve_steps(
                self.tree, query.steps[:query.predicate_step + 1])
            contexts: list[tuple[SchemaNode, SchemaNode]] = []
            for anchor in anchors:
                for node in resolve_steps(
                        self.tree, query.steps[query.predicate_step + 1:],
                        start=anchor):
                    contexts.append((node, anchor))
        else:
            contexts = [(node, node)
                        for node in resolve_steps(self.tree, query.steps)]
        if not contexts:
            raise TranslationError(
                f"path {query} matches no element of the schema")
        plans = [self._plan_context(node, anchor, query)
                 for node, anchor in contexts]
        plans = self._consolidate(plans)
        total_slots = sum(len(p.slots) for p in plans)
        selects: list[Select] = []
        offset = 0
        for plan in plans:
            selects.extend(self._emit_branches(
                plan, query.predicate, offset, total_slots))
            offset += len(plan.slots)
        if not selects:
            raise TranslationError(
                f"query {query} selects nothing under this mapping")
        order = (1,) if len(selects) > 1 else ()
        return Query(selects=tuple(selects), order_by=order)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _context_owner(self, node: SchemaNode) -> int:
        """The annotated node whose table group holds the context rows."""
        tree = self.tree
        if tree.is_attribute(node):
            storage = self.schema.storage_of(node.node_id)
            annotation = storage.inline_annotation
            assert annotation is not None
            holder = tree.parent(node)
            assert holder is not None
            return self.schema.owner_of[holder.node_id] \
                if self.schema.mapping.annotation_of(holder.node_id) is None \
                else holder.node_id
        if tree.is_leaf_element(node):
            storage = self.schema.storage_of(node.node_id)
            if storage.is_split or storage.is_inlined:
                # Inline (or split-inline) storage lives in the parent
                # region's table group.
                annotation = storage.inline_annotation
                assert annotation is not None
                group = self.schema.group(annotation)
                # Find which of the group's owners is this leaf's region
                # owner (the nearest annotated strict ancestor).
                ancestor = tree.nearest_tag_ancestor(node)
                while ancestor is not None and \
                        self.schema.mapping.annotation_of(
                            ancestor.node_id) is None:
                    ancestor = tree.nearest_tag_ancestor(ancestor)
                if ancestor is None:
                    raise TranslationError(
                        f"leaf <{node.name}> has no annotated ancestor")
                return ancestor.node_id
        return self.schema.owner_of[node.node_id]

    def _plan_context(self, node: SchemaNode, anchor: SchemaNode,
                      query: XPathQuery) -> _ContextPlan:
        owner_id = self._context_owner(node)
        annotation = self.schema.mapping.annotation_of(owner_id)
        assert annotation is not None
        group = self.schema.group(annotation)

        up_chain: tuple[str, ...] = ()
        anchor_on_up = False
        anchor_group = group
        if anchor is not node:
            anchor_owner = self.schema.owner_of[anchor.node_id]
            if anchor_owner != owner_id:
                up_chain = self._up_chain(owner_id, anchor_owner)
                anchor_group = self.schema.group(up_chain[-1])
                anchor_on_up = True

        plan = _ContextPlan(node=node, anchor=anchor, owner_id=owner_id,
                            group=group, partitions=list(group.partitions),
                            anchor_group=anchor_group, up_chain=up_chain,
                            anchor_on_up=anchor_on_up)
        if query.projections:
            for path in query.projections:
                self._add_projection_slots(plan, node, path)
        else:
            self._add_self_slots(plan, node)
        return plan

    def _consolidate(self, plans: list[_ContextPlan]) -> list[_ContextPlan]:
        """Merge plans over shared (type-merged) tables; add
        discrimination joins where a specific owner is addressed.

        When a path like ``//author`` resolves to every owner of one
        shared table with identical slots, a single scan suffices. When
        only some owners are addressed (``/dblp/inproceedings/author``),
        each plan joins up to its parent table so that rows of the other
        owners are filtered out.
        """
        mapping = self.schema.mapping
        by_group: dict[str, list[_ContextPlan]] = {}
        order: list[str] = []
        for plan in plans:
            if plan.group.annotation not in by_group:
                order.append(plan.group.annotation)
            by_group.setdefault(plan.group.annotation, []).append(plan)
        out: list[_ContextPlan] = []
        for annotation in order:
            bucket = by_group[annotation]
            group = bucket[0].group
            signatures = {
                tuple((s.label, s.inline_column, s.chain, s.chain_column)
                      for s in plan.slots)
                for plan in bucket}
            owners = {plan.owner_id for plan in bucket}
            self_anchored = all(plan.anchor is plan.node and
                                not plan.up_chain for plan in bucket)
            if len(signatures) == 1 and self_anchored and                     len(bucket) == len(owners) and                     owners == set(group.owner_ids):
                out.append(bucket[0])
                continue
            for plan in bucket:
                if len(group.owner_ids) > 1 and not plan.up_chain:
                    parent_owner = mapping.parent_owner_of(plan.owner_id)
                    if parent_owner is None:
                        raise TranslationError(
                            f"cannot discriminate shared table "
                            f"{annotation!r} rows: no parent table")
                    parent_annotation = mapping.annotation_of(parent_owner)
                    assert parent_annotation is not None
                    plan.up_chain = (parent_annotation,)
                    plan.anchor_on_up = False
                out.append(plan)
        return out

    def _up_chain(self, owner_id: int, anchor_owner: int) -> tuple[str, ...]:
        """Table-group annotations from the context's parent owner up to
        (and including) the anchor's owner."""
        tree = self.tree
        mapping = self.schema.mapping
        chain: list[str] = []
        current = tree.nearest_tag_ancestor(tree.node(owner_id))
        while current is not None:
            annotation = mapping.annotation_of(current.node_id)
            if annotation is not None:
                chain.append(annotation)
                if current.node_id == anchor_owner:
                    return tuple(chain)
            current = tree.nearest_tag_ancestor(current)
        raise TranslationError(
            "predicate anchor is not an ancestor table of the context; "
            "not supported")

    # ------------------------------------------------------------------
    # Slots
    # ------------------------------------------------------------------
    def _add_self_slots(self, plan: _ContextPlan, node: SchemaNode) -> None:
        """Slots for a query returning the context elements themselves."""
        tree = self.tree
        if tree.is_value_node(node):
            self._add_leaf_slots(plan, node, node.name)
            return
        # Complex context: return its inline columns (child tables are
        # out of scope for subtree reconstruction; see module docstring).
        for spec in plan.group.columns:
            if spec.name in ("ID", "PID"):
                continue
            plan.slots.append(_Slot(label=spec.name,
                                    inline_column=spec.name))

    def _add_projection_slots(self, plan: _ContextPlan, context: SchemaNode,
                              path: tuple[Step, ...]) -> None:
        targets = resolve_steps(self.tree, path, start=context)
        if not targets:
            # Projection names an element absent from this context's
            # subtree; it contributes an always-NULL slot.
            plan.slots.append(_Slot(label=path[-1].name))
            return
        for target in targets:
            if not self.tree.is_value_node(target):
                raise TranslationError(
                    f"projection <{target.name}> is not a leaf element "
                    f"or attribute")
            self._add_leaf_slots(plan, target, target.name)

    def _add_leaf_slots(self, plan: _ContextPlan, leaf: SchemaNode,
                        label: str) -> None:
        storage = self.schema.storage_of(leaf.node_id)
        owner_annotation = plan.group.annotation
        if storage.is_split and storage.inline_annotation == owner_annotation:
            for column in storage.split_columns:
                plan.slots.append(_Slot(label=column, inline_column=column))
            chain = self._join_chain(plan.owner_id, leaf)
            plan.slots.append(_Slot(label=f"{label}_rest", chain=chain,
                                    chain_column=storage.value_column))
            return
        if storage.is_inlined and storage.inline_annotation == owner_annotation:
            plan.slots.append(_Slot(label=label,
                                    inline_column=storage.column))
            return
        if storage.has_own_table and \
                storage.own_annotation == owner_annotation and \
                leaf.node_id == plan.owner_id:
            # The context *is* the outlined leaf: its value column is
            # inline in its own table.
            plan.slots.append(_Slot(label=label,
                                    inline_column=storage.value_column))
            return
        # Stored away from the context table: follow the join chain.
        chain = self._join_chain(plan.owner_id, leaf)
        column = self._remote_value_column(leaf, storage)
        plan.slots.append(_Slot(label=label, chain=chain,
                                chain_column=column))

    def _remote_value_column(self, leaf: SchemaNode,
                             storage: LeafStorage) -> str:
        if storage.has_own_table:
            assert storage.value_column is not None
            return storage.value_column
        assert storage.column is not None
        return storage.column

    def _join_chain(self, owner_id: int,
                    leaf: SchemaNode) -> tuple[str, ...]:
        """Table names joining the context table down to the leaf's table.

        Walks annotated nodes strictly between the context owner and the
        leaf (inclusive of the leaf's storage owner). Intermediate
        groups must be partition-free; the final group contributes its
        partition that holds the value column.
        """
        schema = self.schema
        storage = schema.storage_of(leaf.node_id)
        final_annotation = (storage.own_annotation
                            if storage.has_own_table
                            else storage.inline_annotation)
        assert final_annotation is not None
        annotated: list[str] = []
        current: SchemaNode | None = leaf
        while current is not None and current.node_id != owner_id:
            annotation = schema.mapping.annotation_of(current.node_id)
            if annotation is not None:
                annotated.append(annotation)
            current = self.tree.nearest_tag_ancestor(current)
        if current is None:
            raise TranslationError(
                f"leaf <{leaf.name}> is not below the context element")
        annotated.reverse()
        if not storage.has_own_table and annotated and \
                annotated[-1] != final_annotation:
            annotated.append(final_annotation)
        if not annotated:
            annotated = [final_annotation]
        tables: list[str] = []
        for i, annotation in enumerate(annotated):
            group = self.schema.group(annotation)
            is_last = i == len(annotated) - 1
            if is_last:
                column = self._remote_value_column(leaf, storage)
                parts = group.partitions_with_column(column)
            else:
                parts = group.partitions
            if len(parts) != 1:
                raise TranslationError(
                    f"join chain through partitioned table group "
                    f"{annotation!r} is not supported")
            tables.append(parts[0].table_name)
        return tuple(tables)

    # ------------------------------------------------------------------
    # Predicate conditions
    # ------------------------------------------------------------------
    def _predicate_condition(self, plan: _ContextPlan,
                             predicate: Predicate,
                             partition: PartitionSpec,
                             anchor_alias: str,
                             alias_counter):
        """WHERE condition for the predicate on one *anchor* partition.

        Returns ``False`` when the predicate can never hold on this
        partition, or the boolean expression otherwise.
        """
        targets = resolve_steps(self.tree, predicate.path, start=plan.anchor)
        if not targets:
            return False
        options: list[BoolExpr] = []
        for leaf in targets:
            if not self.tree.is_value_node(leaf):
                raise TranslationError(
                    f"selection path ends at non-leaf <{leaf.name}>")
            condition = self._leaf_condition(plan, predicate, leaf,
                                             partition, anchor_alias,
                                             alias_counter)
            if condition is not None:
                options.append(condition)
        if not options:
            return False
        if len(options) == 1:
            return options[0]
        return Or(tuple(options))

    def _leaf_condition(self, plan: _ContextPlan, predicate: Predicate,
                        leaf: SchemaNode, partition: PartitionSpec,
                        anchor_alias: str, alias_counter):
        storage = self.schema.storage_of(leaf.node_id)
        anchor_annotation = plan.anchor_group.annotation
        anchor_owner = self.schema.owner_of[plan.anchor.node_id]

        def value_test(ref: ColumnRef) -> BoolExpr:
            if predicate.op is None:
                return IsNull(ref, negated=True)
            return Comparison(ref, _OP_MAP[predicate.op],
                              Literal(predicate.value))

        if storage.is_split and \
                storage.inline_annotation == anchor_annotation:
            parts: list[BoolExpr] = []
            for column in storage.split_columns:
                if column in partition.column_names:
                    parts.append(value_test(ColumnRef(anchor_alias, column)))
            overflow = self._exists_probe(anchor_owner, leaf, storage,
                                          anchor_alias, alias_counter,
                                          value_test)
            parts.append(overflow)
            return Or(tuple(parts)) if len(parts) > 1 else parts[0]
        if storage.is_inlined and \
                storage.inline_annotation == anchor_annotation:
            assert storage.column is not None
            if storage.column not in partition.column_names:
                return None  # statically absent in this partition
            return value_test(ColumnRef(anchor_alias, storage.column))
        return self._exists_probe(anchor_owner, leaf, storage, anchor_alias,
                                  alias_counter, value_test)

    def _exists_probe(self, anchor_owner: int, leaf: SchemaNode,
                      storage: LeafStorage, anchor_alias: str,
                      alias_counter, value_test) -> BoolExpr:
        chain = self._join_chain(anchor_owner, leaf)
        if len(chain) != 1:
            raise TranslationError(
                f"selection on <{leaf.name}> requires a multi-hop probe; "
                f"not supported")
        alias = f"E{next(alias_counter)}"
        column = self._remote_value_column(leaf, storage)
        where = conjunction([
            Comparison(ColumnRef(alias, "PID"), ComparisonOp.EQ,
                       ColumnRef(anchor_alias, "ID")),
            value_test(ColumnRef(alias, column)),
        ])
        inner = Select(
            items=(SelectItem(Literal(1)),),
            from_tables=(TableRef(chain[0], alias),),
            where=where)
        return Exists(inner)

    # ------------------------------------------------------------------
    # Branch emission
    # ------------------------------------------------------------------
    def _emit_branches(self, plan: _ContextPlan,
                       predicate: Predicate | None,
                       offset: int, total_slots: int) -> list[Select]:
        selects: list[Select] = []
        alias_counter = itertools.count(1)
        context_alias = "T"
        anchor_alias = "P" if (plan.up_chain and plan.anchor_on_up) \
            else context_alias

        # Up-chain joins (context table -> ... -> anchor table).
        up_variants: list[tuple[tuple[TableRef, ...], list[BoolExpr],
                                PartitionSpec | None]] = []
        if plan.up_chain:
            refs: list[TableRef] = []
            joins: list[BoolExpr] = []
            previous = context_alias
            for i, annotation in enumerate(plan.up_chain):
                group = self.schema.group(annotation)
                is_last = i == len(plan.up_chain) - 1
                if is_last and plan.anchor_on_up:
                    alias = anchor_alias
                else:
                    alias = f"U{next(alias_counter)}"
                if is_last:
                    for anchor_partition in group.partitions:
                        variant_refs = tuple(
                            refs + [TableRef(anchor_partition.table_name,
                                             alias)])
                        variant_joins = joins + [Comparison(
                            ColumnRef(previous, "PID"), ComparisonOp.EQ,
                            ColumnRef(alias, "ID"))]
                        up_variants.append((variant_refs, variant_joins,
                                            anchor_partition))
                else:
                    if len(group.partitions) != 1:
                        raise TranslationError(
                            "predicate chain through partitioned group "
                            f"{annotation!r} is not supported")
                    refs.append(TableRef(group.partitions[0].table_name,
                                         alias))
                    joins.append(Comparison(
                        ColumnRef(previous, "PID"), ComparisonOp.EQ,
                        ColumnRef(alias, "ID")))
                    previous = alias
        else:
            up_variants.append(((), [], None))

        for context_partition in plan.partitions:
            for up_refs, up_joins, anchor_partition in up_variants:
                pred_partition = (anchor_partition
                                  if anchor_partition is not None
                                  and plan.anchor_on_up
                                  else context_partition)
                if predicate is not None:
                    condition = self._predicate_condition(
                        plan, predicate, pred_partition, anchor_alias,
                        alias_counter)
                    if condition is False:
                        continue
                else:
                    condition = None
                where_parts = list(up_joins)
                if condition is not None:
                    where_parts.append(condition)
                selects.extend(self._branches_for_partition(
                    plan, context_partition, where_parts, up_refs,
                    context_alias, offset, total_slots, alias_counter))
        return selects

    def _branches_for_partition(self, plan: _ContextPlan,
                                partition: PartitionSpec,
                                where_parts: list[BoolExpr],
                                up_refs: tuple[TableRef, ...],
                                context_alias: str, offset: int,
                                total_slots: int,
                                alias_counter) -> list[Select]:
        selects: list[Select] = []
        # Context branch with the inline slots present in this partition.
        inline_items: list[tuple[int, ColumnRef]] = []
        for i, slot in enumerate(plan.slots):
            if slot.inline_column and \
                    slot.inline_column in partition.column_names:
                inline_items.append(
                    (offset + i, ColumnRef(context_alias, slot.inline_column)))
        wants_inline = any(s.inline_column for s in plan.slots)
        if inline_items or (not plan.slots) or \
                (not wants_inline and not any(s.chain for s in plan.slots)):
            selects.append(self._make_select(
                partition.table_name, context_alias,
                conjunction(where_parts), dict(inline_items), total_slots,
                joins=up_refs))
        # One branch per chained (child-table) slot.
        for i, slot in enumerate(plan.slots):
            if not slot.chain:
                continue
            join_aliases = [f"C{next(alias_counter)}" for _ in slot.chain]
            join_conditions: list[BoolExpr] = []
            previous = context_alias
            for table, alias in zip(slot.chain, join_aliases):
                join_conditions.append(
                    Comparison(ColumnRef(alias, "PID"), ComparisonOp.EQ,
                               ColumnRef(previous, "ID")))
                previous = alias
            value_ref = ColumnRef(join_aliases[-1], slot.chain_column)
            where = conjunction(where_parts + join_conditions)
            selects.append(self._make_select(
                partition.table_name, context_alias, where,
                {offset + i: value_ref}, total_slots,
                joins=up_refs + tuple(
                    TableRef(t, a)
                    for t, a in zip(slot.chain, join_aliases))))
        return selects

    def _make_select(self, context_table: str, context_alias: str,
                     where: BoolExpr | None,
                     slot_values: dict[int, ColumnRef],
                     total_slots: int,
                     joins: tuple[TableRef, ...]) -> Select:
        items = [SelectItem(ColumnRef(context_alias, "ID"), alias="ID")]
        for position in range(total_slots):
            value = slot_values.get(position)
            if value is None:
                items.append(SelectItem(Literal(None)))
            else:
                items.append(SelectItem(value))
        return Select(
            items=tuple(items),
            from_tables=(TableRef(context_table, context_alias),) + joins,
            where=where)


def translate_xpath(schema: MappedSchema, xpath: XPathQuery | str) -> Query:
    """Module-level convenience wrapper around :class:`Translator`."""
    return Translator(schema).translate(xpath)
