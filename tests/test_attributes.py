"""XML attribute support across the whole pipeline (extension).

Attributes (``xs:attribute``) map to inline columns of the owning table
and are addressable in XPath with ``@name`` steps — in predicates and in
projections.
"""

import pytest

from repro.engine import Database
from repro.errors import ValidationError
from repro.mapping import (Shredder, collect_statistics, derive_schema,
                           derive_table_stats, hybrid_inlining,
                           load_documents)
from repro.translate import translate_xpath
from repro.xmlkit import parse
from repro.xpath import evaluate_values, parse_xpath
from repro.xsd import parse_xsd, validate

ORDERS_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
           xmlns:sdb="urn:repro:storage">
  <xs:element name="orders" sdb:table="orders">
    <xs:complexType><xs:sequence>
      <xs:element name="order" minOccurs="0" maxOccurs="unbounded"
                  sdb:table="ord">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="customer" type="xs:string"/>
            <xs:element name="line" minOccurs="0" maxOccurs="unbounded"
                        sdb:table="line">
              <xs:complexType>
                <xs:sequence/>
                <xs:attribute name="sku" type="xs:string" use="required"/>
                <xs:attribute name="qty" type="xs:integer"/>
              </xs:complexType>
            </xs:element>
          </xs:sequence>
          <xs:attribute name="id" type="xs:integer" use="required"/>
          <xs:attribute name="priority" type="xs:string"/>
        </xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>
"""

XML = """
<orders>
  <order id="1" priority="high">
    <customer>alice</customer>
    <line sku="A-1" qty="2"/>
    <line sku="B-7"/>
  </order>
  <order id="2">
    <customer>bob</customer>
    <line sku="A-1" qty="5"/>
  </order>
  <order id="3" priority="low">
    <customer>carol</customer>
  </order>
</orders>
"""


@pytest.fixture(scope="module")
def tree():
    return parse_xsd(ORDERS_XSD, name="orders")


@pytest.fixture(scope="module")
def doc():
    return parse(XML)


class TestSchemaAndValidation:
    def test_attributes_parsed(self, tree):
        order = tree.find_tag_by_path(("orders", "order"))
        names = [a.name for a in tree.attributes_of(order)]
        assert names == ["id", "priority"]
        assert tree.attributes_of(order)[0].min_occurs == 1  # required

    def test_valid_document(self, tree, doc):
        validate(doc, tree)

    def test_missing_required_attribute_rejected(self, tree):
        bad = parse("<orders><order priority='x'>"
                    "<customer>z</customer></order></orders>")
        with pytest.raises(ValidationError):
            validate(bad, tree)

    def test_unknown_attribute_rejected(self, tree):
        bad = parse("<orders><order id='1' bogus='x'>"
                    "<customer>z</customer></order></orders>")
        with pytest.raises(ValidationError):
            validate(bad, tree)

    def test_bad_attribute_type_rejected(self, tree):
        bad = parse("<orders><order id='abc'>"
                    "<customer>z</customer></order></orders>")
        with pytest.raises(ValidationError):
            validate(bad, tree)


class TestMappingAndShredding:
    def test_attribute_columns_in_schema(self, tree):
        schema = derive_schema(hybrid_inlining(tree))
        ord_cols = [c.name for c in schema.group("ord").columns]
        assert "id" in ord_cols and "priority" in ord_cols
        line_cols = [c.name for c in schema.group("line").columns]
        assert "sku" in line_cols and "qty" in line_cols

    def test_required_attribute_not_nullable(self, tree):
        schema = derive_schema(hybrid_inlining(tree))
        assert not schema.group("ord").column("id").nullable
        assert schema.group("ord").column("priority").nullable

    def test_shredded_values(self, tree, doc):
        schema = derive_schema(hybrid_inlining(tree))
        rows = Shredder(schema).shred(doc)
        ord_partition = schema.group("ord").partitions[0]
        by_id = {dict(zip(ord_partition.column_names, row))["id"]: row
                 for row in rows["ord"]}
        first = dict(zip(ord_partition.column_names, by_id["1"]))
        assert first["priority"] == "high"
        second = dict(zip(ord_partition.column_names, by_id["2"]))
        assert second["priority"] is None

    def test_derived_stats_count_attribute_presence(self, tree, doc):
        schema = derive_schema(hybrid_inlining(tree))
        stats = collect_statistics(tree, doc)
        derived = derive_table_stats(schema, stats)
        priority = derived["ord"].column("priority")
        assert priority.row_count - priority.null_count == 2
        qty = derived["line"].column("qty")
        assert qty.row_count - qty.null_count == 2


class TestXPathAndTranslation:
    QUERIES = [
        "//order/@id",
        "//order/@priority",
        '//order[@priority = "high"]/customer',
        '//order[@id >= "2"]/(customer | @priority)',
        "//line/@sku",
        '//order[customer = "bob"]/line/@qty',
    ]

    def test_evaluator_reads_attributes(self, doc):
        assert evaluate_values(parse_xpath("//order/@id"), doc) == \
            ["1", "2", "3"]
        assert evaluate_values(
            parse_xpath('//order[@priority = "high"]/customer'), doc) == \
            ["alice"]

    def test_descendant_attribute_step(self, doc):
        assert sorted(evaluate_values(parse_xpath("//@sku"), doc)) == \
            ["A-1", "A-1", "B-7"]

    @pytest.mark.parametrize("xpath", QUERIES)
    def test_pipeline_equivalence(self, tree, doc, xpath):
        schema = derive_schema(hybrid_inlining(tree))
        db = Database()
        load_documents(db, schema, doc)
        expected = sorted(evaluate_values(parse_xpath(xpath), doc))
        rows = db.execute(translate_xpath(schema, xpath)).rows
        got = sorted(str(v) for row in rows for v in row[1:]
                     if v is not None)
        assert got == expected

    def test_attribute_predicate_becomes_column_test(self, tree):
        schema = derive_schema(hybrid_inlining(tree))
        sql = translate_xpath(schema, '//order[@priority = "high"]/customer')
        assert "priority = 'high'" in str(sql)
