"""Workload model: weighted XPath queries (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..xpath import XPathQuery, parse_xpath


@dataclass(frozen=True)
class WeightedQuery:
    """One workload entry ``(Q_i, f_i)``."""

    query: XPathQuery
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError("query weights must be positive")


@dataclass(frozen=True)
class WeightedUpdate:
    """An insertion load: new elements arriving at the target path.

    ``weight`` is the insert rate relative to query weights (e.g. 2.0 =
    two new ``//inproceedings`` elements per unit of workload time).
    This extends the paper (its conclusion lists update queries as
    future work): physical structures on frequently-updated tables pay a
    maintenance penalty, so update-heavy workloads receive leaner
    designs.
    """

    target: XPathQuery
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError("update weights must be positive")
        if self.target.predicate is not None or self.target.projections:
            raise WorkloadError(
                "update targets are plain element paths (no predicates "
                "or projections)")


@dataclass
class Workload:
    """A named set of weighted XPath queries (plus optional insert load)."""

    name: str
    queries: list[WeightedQuery] = field(default_factory=list)
    updates: list[WeightedUpdate] = field(default_factory=list)

    @classmethod
    def from_strings(cls, name: str, xpaths: list[str],
                     weights: list[float] | None = None) -> "Workload":
        if weights is None:
            weights = [1.0] * len(xpaths)
        if len(weights) != len(xpaths):
            raise WorkloadError("weights and queries differ in length")
        return cls(name=name, queries=[
            WeightedQuery(parse_xpath(x), w)
            for x, w in zip(xpaths, weights)])

    def add(self, xpath: str | XPathQuery, weight: float = 1.0) -> None:
        if isinstance(xpath, str):
            xpath = parse_xpath(xpath)
        self.queries.append(WeightedQuery(xpath, weight))

    def add_update(self, target: str | XPathQuery,
                   weight: float = 1.0) -> None:
        """Declare an insertion load at the target element path."""
        if isinstance(target, str):
            target = parse_xpath(target)
        self.updates.append(WeightedUpdate(target, weight))

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def total_weight(self) -> float:
        return sum(q.weight for q in self.queries)

    def describe(self) -> str:
        lines = [f"[{q.weight:g}] {q.query}" for q in self.queries]
        lines += [f"[insert {u.weight:g}] {u.target}" for u in self.updates]
        return "\n".join(lines)
