"""Integration tests for the three search algorithms.

These assert the paper's qualitative claims at small scale:

* all three produce feasible designs whose translated workload returns
  correct results on real data;
* Greedy searches far fewer transformations than Naive-Greedy;
* Greedy's design quality (measured executed cost) is at least
  comparable to Naive-Greedy's and beats Two-Step's on split-friendly
  workloads.
"""

import pytest

from repro.experiments import (DatasetBundle, measure_design,
                               tuned_hybrid_baseline)
from repro.search import GreedySearch, NaiveGreedySearch, TwoStepSearch
from repro.workload import Workload


@pytest.fixture(scope="module")
def bundle():
    return DatasetBundle.dblp(scale=700, seed=17)


@pytest.fixture(scope="module")
def workload(bundle):
    return bundle.workload_generator(seed=2).generate(6)


@pytest.fixture(scope="module")
def greedy_result(bundle, workload):
    return GreedySearch(bundle.tree, workload, bundle.stats,
                        bundle.storage_bound).run()


class TestGreedy:
    def test_produces_feasible_design(self, greedy_result):
        assert greedy_result.estimated_cost > 0
        assert greedy_result.mapping is not None
        greedy_result.mapping.validate()

    def test_measured_cost_improves_on_hybrid(self, bundle, workload,
                                              greedy_result):
        baseline = tuned_hybrid_baseline(bundle, workload)
        measured = measure_design(greedy_result, bundle)
        assert measured <= baseline.measured_cost * 1.05

    def test_counters_populated(self, greedy_result):
        counters = greedy_result.counters
        assert counters.tuner_calls >= 1
        assert counters.wall_time > 0
        assert counters.transformations_searched >= 0

    def test_describe_is_readable(self, greedy_result):
        text = greedy_result.describe()
        assert "algorithm: greedy" in text
        assert "relational schema" in text

    def test_ablation_flags(self, bundle, workload):
        no_derivation = GreedySearch(
            bundle.tree, workload, bundle.stats, bundle.storage_bound,
            use_cost_derivation=False).run()
        assert no_derivation.counters.derived_query_costs == 0
        no_merge = GreedySearch(
            bundle.tree, workload, bundle.stats, bundle.storage_bound,
            merging="none").run()
        assert no_merge.estimated_cost > 0
        with pytest.raises(ValueError):
            GreedySearch(bundle.tree, workload, bundle.stats,
                         merging="bogus")


class TestNaiveGreedy:
    def test_searches_many_more_transformations(self, bundle, workload,
                                                greedy_result):
        naive = NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                                  bundle.storage_bound, max_rounds=2).run()
        # Even capped at two rounds, Naive enumerates several times what
        # the full Greedy searches in its *entire* run.
        assert naive.counters.transformations_searched > \
            3 * max(greedy_result.counters.transformations_searched, 1)

    def test_quality_comparable_to_greedy(self, bundle, workload,
                                          greedy_result):
        naive = NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                                  bundle.storage_bound, max_rounds=3).run()
        greedy_measured = measure_design(greedy_result, bundle)
        naive_measured = measure_design(naive, bundle)
        # The two should land in the same ballpark (paper Fig. 4).
        assert greedy_measured <= naive_measured * 1.5


class TestTwoStep:
    def test_runs_and_is_feasible(self, bundle, workload):
        result = TwoStepSearch(bundle.tree, workload, bundle.stats,
                               bundle.storage_bound, max_rounds=4).run()
        assert result.estimated_cost > 0
        result.mapping.validate()

    def test_split_friendly_workload_beats_twostep(self, bundle):
        # A workload that loves repetition split + covering indexes: the
        # motivating example. Greedy must beat Two-Step on it (Fig. 4).
        workload = Workload.from_strings("split-friendly", [
            '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
            '/(title | year | author)',
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | author)',
        ])
        greedy = GreedySearch(bundle.tree, workload, bundle.stats,
                              bundle.storage_bound).run()
        twostep = TwoStepSearch(bundle.tree, workload, bundle.stats,
                                bundle.storage_bound, max_rounds=4).run()
        greedy_measured = measure_design(greedy, bundle)
        twostep_measured = measure_design(twostep, bundle)
        assert greedy_measured < twostep_measured
