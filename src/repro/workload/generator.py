"""Random workload generation (paper Section 5.1.3).

Workloads vary two parameters:

* **selectivity** of the selection condition — "low" (0.01–0.1, i.e.
  selective equality predicates) or "high" (0.5–1, i.e. weak range
  predicates or none), and
* **number of projections** — "low" (1–4) or "high" (5–20, capped by the
  context element's leaf count).

Names follow the paper: ``HP-LS-20`` = high projections, low
selectivity, 20 queries. Predicate literals are drawn from the collected
statistics so that actual selectivities land in the requested band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import WorkloadError
from ..mapping import CollectedStats
from ..xpath import Axis, CompareOp, Predicate, Step, XPathQuery
from ..xsd import NodeKind, SchemaNode, SchemaTree
from .model import WeightedQuery, Workload

LOW_SELECTIVITY = (0.01, 0.10)
HIGH_SELECTIVITY = (0.50, 1.00)
LOW_PROJECTIONS = (1, 4)
HIGH_PROJECTIONS = (5, 20)


@dataclass
class _ContextInfo:
    node: SchemaNode
    path: tuple[str, ...]
    leaves: list[SchemaNode]
    instances: int


def _context_elements(tree: SchemaTree,
                      stats: CollectedStats) -> list[_ContextInfo]:
    """TAG nodes that make useful query contexts (several leaves)."""
    out = []
    for node in tree.iter_nodes():
        if node.kind != NodeKind.TAG or tree.is_leaf_element(node):
            continue
        leaves = _region_leaves(tree, node)
        if len(leaves) >= 2:
            out.append(_ContextInfo(
                node=node,
                path=tree.tag_path(node),
                leaves=leaves,
                instances=stats.instances(node.node_id)))
    return [c for c in out if c.instances > 0]


def _region_leaves(tree: SchemaTree, node: SchemaNode) -> list[SchemaNode]:
    """Distinct-name leaf elements in the node's subtree (one level of
    element structure — the paper's queries project direct children)."""
    leaves: list[SchemaNode] = []
    seen: set[str] = set()

    def walk(current: SchemaNode) -> None:
        for child in tree.children(current):
            if child.kind == NodeKind.TAG:
                if tree.is_leaf_element(child) and child.name not in seen:
                    seen.add(child.name)
                    leaves.append(child)
            elif child.kind != NodeKind.SIMPLE:
                walk(child)

    walk(node)
    return leaves


class WorkloadGenerator:
    """Generates random workloads over one schema + statistics."""

    def __init__(self, tree: SchemaTree, stats: CollectedStats,
                 seed: int = 0):
        self.tree = tree
        self.stats = stats
        self.seed = seed
        self.rng = random.Random(seed)
        self.contexts = _context_elements(tree, stats)
        if not self.contexts:
            raise WorkloadError("schema has no usable context elements")

    # ------------------------------------------------------------------
    def generate(self, n_queries: int,
                 selectivity: tuple[float, float] = LOW_SELECTIVITY,
                 projections: tuple[int, int] = LOW_PROJECTIONS,
                 name: str | None = None) -> Workload:
        label = name or self._name(n_queries, selectivity, projections)
        workload = Workload(label)
        for _ in range(n_queries):
            workload.queries.append(
                WeightedQuery(self._one_query(selectivity, projections)))
        return workload

    @staticmethod
    def _name(n: int, selectivity, projections) -> str:
        sel = "LS" if selectivity[1] <= 0.25 else "HS"
        proj = "HP" if projections[1] >= 5 else "LP"
        return f"{proj}-{sel}-{n}"

    def standard_suite(self, n_queries: int,
                       seed_offset: int = 0) -> list[Workload]:
        """The four LP/HP x LS/HS workloads of Section 5.1.3.

        ``seed_offset`` (when non-zero) reseeds the generator's RNG to
        ``seed + seed_offset`` before drawing, so two suites from the
        same generator can be made disjoint yet reproducible. The
        default 0 keeps drawing from the current RNG state, preserving
        historical sequences.
        """
        if seed_offset:
            self.rng = random.Random(self.seed + seed_offset)
        out = []
        for projections in (LOW_PROJECTIONS, HIGH_PROJECTIONS):
            for selectivity in (LOW_SELECTIVITY, HIGH_SELECTIVITY):
                out.append(self.generate(n_queries, selectivity, projections))
        return out

    # ------------------------------------------------------------------
    def _one_query(self, selectivity, projections) -> XPathQuery:
        rng = self.rng
        context = rng.choices(self.contexts,
                              weights=[max(c.instances, 1)
                                       for c in self.contexts], k=1)[0]
        steps = tuple(Step(Axis.CHILD, name) for name in context.path)
        n_proj = rng.randint(projections[0],
                             min(projections[1], len(context.leaves)))
        chosen = rng.sample(context.leaves, n_proj)
        projection_paths = tuple(
            (Step(Axis.CHILD, leaf.name),) for leaf in chosen)
        predicate = self._predicate(context, selectivity)
        return XPathQuery(
            steps=steps,
            predicate=predicate,
            predicate_step=(len(steps) - 1) if predicate else None,
            projections=projection_paths,
        )

    def _predicate(self, context: _ContextInfo,
                   selectivity: tuple[float, float]) -> Predicate | None:
        rng = self.rng
        lo, hi = selectivity
        target = rng.uniform(lo, hi)
        if target >= 0.99:
            return None  # no selection: selectivity 1
        candidates = []
        for leaf in context.leaves:
            stats = self.stats.leaf_stats.get(leaf.node_id)
            if stats is None or stats.n_distinct == 0:
                continue
            eq_sel = stats.non_null_fraction / stats.n_distinct
            candidates.append((leaf, stats, eq_sel))
        if not candidates:
            return None
        # Prefer an equality predicate whose selectivity is closest to
        # the target — but only when it lands near the band (equality on
        # a low-cardinality column would overshoot a high-selectivity
        # target). Fall back to a range predicate on a numeric leaf.
        leaf, stats, eq_sel = min(
            candidates, key=lambda c: abs(c[2] - target))
        if target / 4 <= eq_sel <= target * 4:
            value = self._pick_value(stats)
            return Predicate(path=(Step(Axis.CHILD, leaf.name),),
                             op=CompareOp.EQ, value=str(value))
        numeric = [c for c in candidates
                   if isinstance(c[1].min_value, (int, float))]
        if numeric:
            leaf, stats, _ = self.rng.choice(numeric)
            boundaries = stats.boundaries
            if boundaries:
                # >= boundary at quantile (1 - target).
                index = min(len(boundaries) - 1,
                            int(len(boundaries) * (1.0 - target)))
                value = boundaries[index]
                return Predicate(path=(Step(Axis.CHILD, leaf.name),),
                                 op=CompareOp.GE, value=str(value))
        return None

    def _pick_value(self, stats):
        if stats.boundaries:
            return self.rng.choice(stats.boundaries)
        return stats.min_value
