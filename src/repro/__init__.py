"""repro — XML-to-relational shredding advisor.

A faithful reproduction of *"Storing XML (with XSD) in SQL Databases:
Interplay of Logical and Physical Designs"* (Chaudhuri, Chen, Shim, Wu;
ICDE 2004 / IEEE TKDE 17(12), 2005), including every substrate the paper
depends on: an XML/XSD/XPath stack, a relational engine with a
cost-based optimizer, an index/materialized-view tuning advisor, the
schema-transformation space, the sorted outer-union query translator,
and the three design-search algorithms the paper evaluates.

Quickstart::

    from repro import (parse_dtd, GreedySearch, Workload,
                       collect_statistics, hybrid_inlining)

    tree = parse_dtd(my_dtd_text, root="catalog")
    stats = collect_statistics(tree, my_documents)
    workload = Workload.from_strings("w", ['//item[price >= "10"]/name'])
    result = GreedySearch(tree, workload, stats).run()
    print(result.describe())

See ``examples/`` for runnable end-to-end scenarios and DESIGN.md for
the system inventory.
"""

from .check import (Finding, Findings, analyze_query, check_mapping,
                    check_plan, check_schema, check_transform,
                    checks_enabled, lint_bundle, override_checks)
from .engine import (Column, Database, ExecutionResult, Index,
                     JoinViewDefinition, SQLType, Table)
from .errors import CheckError, ReproError
from .mapping import (Mapping, Shredder, UnionDistribution,
                      collect_statistics, derive_schema, derive_table_stats,
                      enumerate_transformations, fully_split,
                      hybrid_inlining, load_documents, shared_inlining)
from .obs import (NULL_TRACER, Tracer, render_tree, set_tracer, summarize,
                  to_json as trace_to_json)
from .physdesign import Configuration, IndexTuningAdvisor, materialize
from .search import (DesignResult, GreedySearch, NaiveGreedySearch,
                     TwoStepSearch)
from .sqlast import parse_sql, render
from .translate import Translator, translate_xpath
from .workload import Workload, WorkloadGenerator
from .xmlkit import Document, Element, parse as parse_xml, serialize
from .xpath import evaluate as evaluate_xpath, parse_xpath
from .xsd import (BaseType, SchemaTree, TreeBuilder, parse_dtd, parse_xsd,
                  validate)

__version__ = "1.0.0"

__all__ = [
    # xml / xsd / xpath
    "Document", "Element", "parse_xml", "serialize",
    "SchemaTree", "TreeBuilder", "BaseType", "parse_xsd", "parse_dtd",
    "validate", "parse_xpath", "evaluate_xpath",
    # engine / sql
    "Database", "Table", "Column", "Index", "SQLType",
    "JoinViewDefinition", "ExecutionResult", "parse_sql", "render",
    # mapping
    "Mapping", "UnionDistribution", "derive_schema", "hybrid_inlining",
    "shared_inlining", "fully_split", "Shredder", "load_documents",
    "collect_statistics", "derive_table_stats", "enumerate_transformations",
    # physical design
    "IndexTuningAdvisor", "Configuration", "materialize",
    # observability
    "Tracer", "NULL_TRACER", "set_tracer", "render_tree", "trace_to_json",
    "summarize",
    # static analysis
    "Finding", "Findings", "analyze_query", "check_mapping", "check_plan",
    "check_schema", "check_transform", "checks_enabled", "lint_bundle",
    "override_checks",
    # translation / workloads / search
    "Translator", "translate_xpath", "Workload", "WorkloadGenerator",
    "GreedySearch", "NaiveGreedySearch", "TwoStepSearch", "DesignResult",
    # errors
    "ReproError", "CheckError",
    "__version__",
]
